package hypergraph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func FuzzRead(f *testing.F) {
	seeds := []string{
		"circuit c\ninput a b\noutput y z\ncell u0 in=a,b out=y,z dep=11;01\n",
		"circuit c\ninput a\noutput y\ncell u0 area=2 dff=1 in=a out=y\n",
		"circuit c\n",
		"circuit c\ninput a\noutput y\ncell u0 in=a out=y dep=1\ncell u1 in=y out=a\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if back.NumCells() != g.NumCells() || back.NumNets() != g.NumNets() ||
			back.NumPins() != g.NumPins() || back.NumTerminals() != g.NumTerminals() {
			t.Fatal("round trip changed counts")
		}
	})
}

// FuzzParseHypergraph drives ReadLimits with deliberately tight caps
// so the limit checks themselves get fuzzed: the seeds each trip one
// cap. Any failure must be a typed *ParseError (optionally wrapping a
// *LimitError), never a panic or an untyped error.
func FuzzParseHypergraph(f *testing.F) {
	seeds := []string{
		// Trips MaxCells=4.
		"circuit c\ninput a\noutput y\ncell u0 in=a out=w0\ncell u1 in=w0 out=w1\ncell u2 in=w1 out=w2\ncell u3 in=w2 out=w3\ncell u4 in=w3 out=y\n",
		// Trips MaxPins=8.
		"circuit c\ninput a b c d e\noutput y\ncell u0 in=a,b,c,d,e,a,b,c out=y\n",
		// Trips MaxFanout=4.
		"circuit c\ninput a\noutput y\ncell u0 in=a,a,a,a,a out=y\n",
		// Trips MaxNets=8.
		"circuit c\ninput a\ncell u0 in=a out=w0,w1,w2,w3,w4,w5,w6,w7,w8\n",
		// Trips MaxLineBytes=256.
		"circuit c\ninput a\ncell u0 in=a out=" + strings.Repeat("w,", 150) + "y\n",
		// Truncated cell record.
		"circuit c\ncell\n",
		// Bad attribute.
		"circuit c\ncell u0 area\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lim := Limits{MaxLineBytes: 256, MaxCells: 4, MaxPins: 8, MaxFanout: 4, MaxNets: 8}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadLimits(strings.NewReader(src), lim)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !strings.HasPrefix(err.Error(), "hypergraph:") {
				t.Fatalf("untyped parse failure: %v", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		if g.NumCells() > lim.MaxCells {
			t.Fatalf("limit leak: %d cells accepted, cap %d", g.NumCells(), lim.MaxCells)
		}
	})
}
