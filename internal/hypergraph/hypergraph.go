// Package hypergraph models a technology-mapped circuit as the
// hypergraph H = ({X;Y}, E) of Kužnar et al. (DAC'94, Section II):
// interior nodes X are mapped cells (e.g. Xilinx XC3000 CLBs) with up
// to m outputs and n inputs plus a dependency relation between them,
// terminal nodes Y are primary inputs/outputs (IOBs), and E is the set
// of nets. Cells carry the per-output adjacency vectors A_Xi from which
// the replication potential ψ (Eq. 4) is computed.
package hypergraph

import (
	"fmt"

	"fpgapart/internal/bitset"
)

// CellID identifies a cell (interior node) within a Graph.
type CellID int32

// NetID identifies a net within a Graph.
type NetID int32

// NilNet marks an unconnected pin slot.
const NilNet NetID = -1

// ExtKind classifies how a net touches the terminal node set Y.
type ExtKind uint8

const (
	// Internal nets connect cells only.
	Internal ExtKind = iota
	// ExtIn nets are driven by a primary input terminal.
	ExtIn
	// ExtOut nets drive a primary output terminal (driver is a cell).
	ExtOut
)

func (k ExtKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case ExtIn:
		return "input"
	case ExtOut:
		return "output"
	}
	return fmt.Sprintf("ExtKind(%d)", uint8(k))
}

// Conn is one cell pin connection on a net.
type Conn struct {
	Cell CellID
	Out  bool // true: cell output pin (net driver); false: cell input pin
	Pin  int  // index into the cell's Outputs or Inputs
}

// Cell is an interior node: a mapped logic cell with named I/O
// dependency. Dep[i] is the adjacency vector A_Xi of output i over the
// cell inputs (Dep[i].Get(j) reports that output i is a function of
// input j).
type Cell struct {
	Name    string
	Inputs  []NetID
	Outputs []NetID
	Dep     []bitset.Vector
	Area    int // elementary circuit units consumed (CLBs); ≥ 1
	DFFs    int // number of D flip-flops packed into the cell
	// Replica marks a copy created by functional replication relative
	// to the original source circuit. The flag is set structurally at
	// subcircuit materialization (InstanceSpec.Replica) and survives
	// nested extraction, so counting replicas never requires parsing
	// the "$r" name suffixes (which exist only to keep names unique).
	Replica bool
}

// NumPins returns the number of cell pins (inputs + outputs).
func (c *Cell) NumPins() int { return len(c.Inputs) + len(c.Outputs) }

// ReplicationPotential evaluates ψ per Eq. (4): the number of inputs
// that are adjacent to exactly one output. Single-output cells have
// ψ = 0 by definition.
func (c *Cell) ReplicationPotential() int {
	m := len(c.Outputs)
	if m <= 1 {
		return 0
	}
	psi := 0
	for i := 0; i < m; i++ {
		// Inputs adjacent to output i and to no other output.
		only := c.Dep[i].Clone()
		for j := 0; j < m; j++ {
			if j != i {
				only = only.AndNot(c.Dep[j])
			}
		}
		psi += only.Norm()
	}
	return psi
}

// InputsFor returns the union of adjacency vectors over the given
// output indices: the set of input pins a copy carrying exactly those
// outputs must keep connected. A nil slice selects all outputs.
func (c *Cell) InputsFor(outputs []int) bitset.Vector {
	v := bitset.New(len(c.Inputs))
	if outputs == nil {
		for i := range c.Outputs {
			v = v.Or(c.Dep[i])
		}
		return v
	}
	for _, i := range outputs {
		v = v.Or(c.Dep[i])
	}
	return v
}

// Net is a hyperedge. Conns lists every cell pin on the net; Ext marks
// nets that also connect a terminal node (primary I/O).
type Net struct {
	Name  string
	Conns []Conn
	Ext   ExtKind
}

// Degree returns the number of cell pins on the net, plus one for the
// terminal connection if the net is external.
func (n *Net) Degree() int {
	d := len(n.Conns)
	if n.Ext != Internal {
		d++
	}
	return d
}

// Graph is the circuit hypergraph.
type Graph struct {
	Name  string
	Cells []Cell
	Nets  []Net
}

// NumCells returns |X|.
func (g *Graph) NumCells() int { return len(g.Cells) }

// NumNets returns |E|.
func (g *Graph) NumNets() int { return len(g.Nets) }

// NumTerminals returns |Y|, the number of external nets (each external
// net consumes one IOB on whichever device hosts it).
func (g *Graph) NumTerminals() int {
	t := 0
	for i := range g.Nets {
		if g.Nets[i].Ext != Internal {
			t++
		}
	}
	return t
}

// TotalArea returns the sum of cell areas (CLB count for mapped cells).
func (g *Graph) TotalArea() int {
	a := 0
	for i := range g.Cells {
		a += g.Cells[i].Area
	}
	return a
}

// NumDFF returns the number of D flip-flops in the circuit.
func (g *Graph) NumDFF() int {
	d := 0
	for i := range g.Cells {
		d += g.Cells[i].DFFs
	}
	return d
}

// NumPins returns the total pin count: cell pins plus one terminal pin
// per external net.
func (g *Graph) NumPins() int {
	p := 0
	for i := range g.Cells {
		p += g.Cells[i].NumPins()
	}
	for i := range g.Nets {
		if g.Nets[i].Ext != Internal {
			p++
		}
	}
	return p
}

// Cell returns the cell with the given id.
func (g *Graph) Cell(id CellID) *Cell { return &g.Cells[id] }

// Net returns the net with the given id.
func (g *Graph) Net(id NetID) *Net { return &g.Nets[id] }

// CellNets returns the distinct nets incident to the cell, in pin
// order (outputs first), without duplicates.
func (g *Graph) CellNets(id CellID) []NetID {
	c := &g.Cells[id]
	seen := make(map[NetID]bool, c.NumPins())
	out := make([]NetID, 0, c.NumPins())
	add := func(n NetID) {
		if n != NilNet && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range c.Outputs {
		add(n)
	}
	for _, n := range c.Inputs {
		add(n)
	}
	return out
}

// Validate checks structural invariants:
//   - every pin references an existing net (or NilNet for inputs);
//   - Dep has one adjacency vector per output, each of input width;
//   - every output drives a net, and every net has exactly one driver
//     (a cell output for Internal/ExtOut nets, the implicit terminal
//     for ExtIn nets);
//   - Conns mirrors the pin fields exactly;
//   - every net has at least one sink (a cell input or an ExtOut
//     terminal);
//   - areas are positive.
func (g *Graph) Validate() error {
	type driveInfo struct {
		drivers int
		sinks   int
	}
	info := make([]driveInfo, len(g.Nets))
	cellNames := make(map[string]bool, len(g.Cells))
	for ci := range g.Cells {
		c := &g.Cells[ci]
		if c.Area < 1 {
			return fmt.Errorf("hypergraph %q: cell %q has non-positive area %d", g.Name, c.Name, c.Area)
		}
		if len(c.Outputs) == 0 {
			return fmt.Errorf("hypergraph %q: cell %q has no outputs", g.Name, c.Name)
		}
		if cellNames[c.Name] {
			return fmt.Errorf("hypergraph %q: duplicate cell name %q", g.Name, c.Name)
		}
		cellNames[c.Name] = true
		if len(c.Dep) != len(c.Outputs) {
			return fmt.Errorf("hypergraph %q: cell %q has %d outputs but %d adjacency vectors",
				g.Name, c.Name, len(c.Outputs), len(c.Dep))
		}
		for i, d := range c.Dep {
			if d.Len() != len(c.Inputs) {
				return fmt.Errorf("hypergraph %q: cell %q output %d adjacency vector width %d, want %d",
					g.Name, c.Name, i, d.Len(), len(c.Inputs))
			}
		}
		for pi, n := range c.Outputs {
			if n == NilNet {
				return fmt.Errorf("hypergraph %q: cell %q output %d is unconnected", g.Name, c.Name, pi)
			}
			if int(n) < 0 || int(n) >= len(g.Nets) {
				return fmt.Errorf("hypergraph %q: cell %q output %d references invalid net %d", g.Name, c.Name, pi, n)
			}
			info[n].drivers++
		}
		for pi, n := range c.Inputs {
			if n == NilNet {
				continue
			}
			if int(n) < 0 || int(n) >= len(g.Nets) {
				return fmt.Errorf("hypergraph %q: cell %q input %d references invalid net %d", g.Name, c.Name, pi, n)
			}
			info[n].sinks++
		}
	}
	for ni := range g.Nets {
		net := &g.Nets[ni]
		d := info[ni]
		switch net.Ext {
		case ExtIn:
			if d.drivers != 0 {
				return fmt.Errorf("hypergraph %q: primary-input net %q also driven by %d cell output(s)",
					g.Name, net.Name, d.drivers)
			}
		default:
			if d.drivers != 1 {
				return fmt.Errorf("hypergraph %q: net %q has %d drivers, want 1", g.Name, net.Name, d.drivers)
			}
		}
		sinks := d.sinks
		if net.Ext == ExtOut {
			sinks++
		}
		if sinks == 0 {
			return fmt.Errorf("hypergraph %q: net %q has no sinks", g.Name, net.Name)
		}
		// Conns must mirror pins.
		for _, cn := range net.Conns {
			if int(cn.Cell) < 0 || int(cn.Cell) >= len(g.Cells) {
				return fmt.Errorf("hypergraph %q: net %q conn references invalid cell %d", g.Name, net.Name, cn.Cell)
			}
			c := &g.Cells[cn.Cell]
			if cn.Out {
				if cn.Pin < 0 || cn.Pin >= len(c.Outputs) || c.Outputs[cn.Pin] != NetID(ni) {
					return fmt.Errorf("hypergraph %q: net %q conn (%s out %d) does not match cell pins",
						g.Name, net.Name, c.Name, cn.Pin)
				}
			} else {
				if cn.Pin < 0 || cn.Pin >= len(c.Inputs) || c.Inputs[cn.Pin] != NetID(ni) {
					return fmt.Errorf("hypergraph %q: net %q conn (%s in %d) does not match cell pins",
						g.Name, net.Name, c.Name, cn.Pin)
				}
			}
		}
	}
	// Reverse direction: every pin appears in its net's conn list.
	counts := make(map[NetID]int, len(g.Nets))
	for ci := range g.Cells {
		c := &g.Cells[ci]
		for _, n := range c.Outputs {
			counts[n]++
		}
		for _, n := range c.Inputs {
			if n != NilNet {
				counts[n]++
			}
		}
	}
	for ni := range g.Nets {
		if len(g.Nets[ni].Conns) != counts[NetID(ni)] {
			return fmt.Errorf("hypergraph %q: net %q has %d conns but %d referencing pins",
				g.Name, g.Nets[ni].Name, len(g.Nets[ni].Conns), counts[NetID(ni)])
		}
	}
	return nil
}

// RebuildConns recomputes every net's Conns slice from the cell pin
// fields. Builders that assemble Cells/Nets directly call this before
// Validate.
func (g *Graph) RebuildConns() {
	for ni := range g.Nets {
		g.Nets[ni].Conns = g.Nets[ni].Conns[:0]
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		for pi, n := range c.Outputs {
			g.Nets[n].Conns = append(g.Nets[n].Conns, Conn{Cell: CellID(ci), Out: true, Pin: pi})
		}
		for pi, n := range c.Inputs {
			if n != NilNet {
				g.Nets[n].Conns = append(g.Nets[n].Conns, Conn{Cell: CellID(ci), Out: false, Pin: pi})
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{Name: g.Name, Cells: make([]Cell, len(g.Cells)), Nets: make([]Net, len(g.Nets))}
	for i := range g.Cells {
		c := g.Cells[i]
		c.Inputs = append([]NetID(nil), c.Inputs...)
		c.Outputs = append([]NetID(nil), c.Outputs...)
		dep := make([]bitset.Vector, len(c.Dep))
		for j := range c.Dep {
			dep[j] = c.Dep[j].Clone()
		}
		c.Dep = dep
		out.Cells[i] = c
	}
	for i := range g.Nets {
		n := g.Nets[i]
		n.Conns = append([]Conn(nil), n.Conns...)
		out.Nets[i] = n
	}
	return out
}

// PotentialDistribution is the cell distribution d_X(ψ) of Eq. (5),
// with single-output cells reported separately from multi-output cells
// of ψ = 0 as in Fig. 3 ("0" vs "0*").
type PotentialDistribution struct {
	SingleOutput int         // cells with one output (ψ = 0 by Eq. 4)
	MultiZero    int         // multi-output cells with ψ = 0 (the "0*" bin)
	ByPsi        map[int]int // multi-output cells keyed by ψ ≥ 1
	Total        int
}

// Distribution computes d_X(ψ) over all cells of the graph.
func (g *Graph) Distribution() PotentialDistribution {
	d := PotentialDistribution{ByPsi: make(map[int]int), Total: len(g.Cells)}
	for i := range g.Cells {
		c := &g.Cells[i]
		if len(c.Outputs) <= 1 {
			d.SingleOutput++
			continue
		}
		psi := c.ReplicationPotential()
		if psi == 0 {
			d.MultiZero++
		} else {
			d.ByPsi[psi]++
		}
	}
	return d
}

// ReplicableCells returns the number of cells eligible for functional
// replication at threshold T per Eq. (6): multi-output cells with
// ψ ≥ T (T = 0 admits multi-output cells with ψ = 0, per the Table IV
// note; single-output cells are never functionally replicable).
func (g *Graph) ReplicableCells(t int) int {
	n := 0
	for i := range g.Cells {
		c := &g.Cells[i]
		if len(c.Outputs) > 1 && c.ReplicationPotential() >= t {
			n++
		}
	}
	return n
}

// Components returns the number of connected components of the cell
// graph (cells joined by shared nets). Partitionable circuits are
// usually one component; generators and subcircuit extraction can
// produce more.
func (g *Graph) Components() int {
	if len(g.Cells) == 0 {
		return 0
	}
	visited := make([]bool, len(g.Cells))
	var stack []CellID
	comps := 0
	for start := range g.Cells {
		if visited[start] {
			continue
		}
		comps++
		visited[start] = true
		stack = append(stack[:0], CellID(start))
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, n := range g.CellNets(c) {
				for _, cn := range g.Nets[n].Conns {
					if !visited[cn.Cell] {
						visited[cn.Cell] = true
						stack = append(stack, cn.Cell)
					}
				}
			}
		}
	}
	return comps
}
