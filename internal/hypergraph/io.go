package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The mapped-circuit text format (".clb") is line oriented:
//
//	# comment
//	circuit s5378
//	input pi0 pi1
//	output w12 w99
//	cell u0 area=1 dff=1 in=pi0,pi1 out=w0,w1 dep=11;01
//
// Each cell line carries its input nets, output nets and the adjacency
// matrix (one row of 0/1 per output, rows separated by ';').

// Write serializes the graph.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", g.Name)
	var ins, outs []string
	for i := range g.Nets {
		switch g.Nets[i].Ext {
		case ExtIn:
			ins = append(ins, g.Nets[i].Name)
		case ExtOut:
			outs = append(outs, g.Nets[i].Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(ins, " "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(outs, " "))
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		inNames := make([]string, len(c.Inputs))
		for i, n := range c.Inputs {
			inNames[i] = g.Nets[n].Name
		}
		outNames := make([]string, len(c.Outputs))
		for i, n := range c.Outputs {
			outNames[i] = g.Nets[n].Name
		}
		rows := make([]string, len(c.Dep))
		for i, d := range c.Dep {
			var sb strings.Builder
			for j := 0; j < d.Len(); j++ {
				if d.Get(j) {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			rows[i] = sb.String()
		}
		replica := ""
		if c.Replica {
			replica = " replica=1"
		}
		fmt.Fprintf(bw, "cell %s area=%d dff=%d%s in=%s out=%s dep=%s\n",
			c.Name, c.Area, c.DFFs, replica,
			strings.Join(inNames, ","), strings.Join(outNames, ","), strings.Join(rows, ";"))
	}
	return bw.Flush()
}

// Read parses the text format with the default Limits and validates
// the result.
func Read(r io.Reader) (*Graph, error) {
	return ReadLimits(r, Limits{})
}

// ReadLimits is Read under explicit resource caps: input exceeding a
// limit fails fast with a *ParseError wrapping a *LimitError instead
// of driving unbounded allocation. Syntax errors are *ParseError too,
// carrying the 1-based line and, where known, the column of the
// offending token.
func ReadLimits(r io.Reader, lim Limits) (*Graph, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(lim.scanBuf(), lim.MaxLineBytes)
	var b *Builder
	lineNo := 0
	cells := 0
	var fanout []int // pins per net, indexed by NetID
	perr := func(col int, format string, args ...any) error {
		return &ParseError{Line: lineNo, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
	limErr := func(quantity string, value, limit int) error {
		return &ParseError{Line: lineNo, Err: &LimitError{Quantity: quantity, Value: value, Limit: limit}}
	}
	netOf := func(name string) (NetID, error) {
		if id, ok := b.NetByName(name); ok {
			return id, nil
		}
		if len(fanout) >= lim.MaxNets {
			return 0, limErr("nets", len(fanout)+1, lim.MaxNets)
		}
		id := b.Net(name)
		for int(id) >= len(fanout) {
			fanout = append(fanout, 0)
		}
		return id, nil
	}
	pin := func(id NetID) error {
		for int(id) >= len(fanout) {
			fanout = append(fanout, 0)
		}
		fanout[id]++
		if fanout[id] > lim.MaxFanout {
			return limErr("fanout", fanout[id], lim.MaxFanout)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if b != nil {
				return nil, perr(0, "duplicate circuit line")
			}
			if len(fields) != 2 {
				return nil, perr(0, "want 'circuit <name>'")
			}
			b = NewBuilder(fields[1])
		case "input":
			if b == nil {
				return nil, perr(0, "input before circuit")
			}
			for _, n := range fields[1:] {
				if _, ok := b.NetByName(n); !ok && len(fanout) >= lim.MaxNets {
					return nil, limErr("nets", len(fanout)+1, lim.MaxNets)
				}
				id := b.InputNet(n)
				for int(id) >= len(fanout) {
					fanout = append(fanout, 0)
				}
			}
		case "output":
			if b == nil {
				return nil, perr(0, "output before circuit")
			}
			for _, n := range fields[1:] {
				id, err := netOf(n)
				if err != nil {
					return nil, err
				}
				b.MarkOutput(id)
			}
		case "cell":
			if b == nil {
				return nil, perr(0, "cell before circuit")
			}
			if len(fields) < 2 {
				return nil, perr(0, "cell needs a name (truncated record?)")
			}
			if cells >= lim.MaxCells {
				return nil, limErr("cells", cells+1, lim.MaxCells)
			}
			spec := CellSpec{Name: fields[1], Area: 1}
			var depRows []string
			pins := 0
			for fi, kv := range fields[2:] {
				col := fieldCol(line, fi+2)
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, perr(col, "bad attribute %q (truncated record?)", kv)
				}
				switch key {
				case "area":
					a, err := strconv.Atoi(val)
					if err != nil {
						return nil, perr(col, "area: %v", err)
					}
					spec.Area = a
				case "dff":
					d, err := strconv.Atoi(val)
					if err != nil {
						return nil, perr(col, "dff: %v", err)
					}
					spec.DFFs = d
				case "replica":
					r, err := strconv.Atoi(val)
					if err != nil {
						return nil, perr(col, "replica: %v", err)
					}
					spec.Replica = r != 0
				case "in":
					if val != "" {
						for _, n := range strings.Split(val, ",") {
							id, err := netOf(n)
							if err != nil {
								return nil, err
							}
							if err := pin(id); err != nil {
								return nil, err
							}
							spec.Inputs = append(spec.Inputs, id)
							pins++
						}
					}
				case "out":
					if val != "" {
						for _, n := range strings.Split(val, ",") {
							id, err := netOf(n)
							if err != nil {
								return nil, err
							}
							if err := pin(id); err != nil {
								return nil, err
							}
							spec.Outputs = append(spec.Outputs, id)
							pins++
						}
					}
				case "dep":
					depRows = strings.Split(val, ";")
				default:
					return nil, perr(col, "unknown attribute %q", key)
				}
				if pins > lim.MaxPins {
					return nil, limErr("pins", pins, lim.MaxPins)
				}
			}
			if depRows != nil {
				spec.DepBits = make([][]int, len(depRows))
				for i, row := range depRows {
					bits := make([]int, len(row))
					for j, ch := range row {
						switch ch {
						case '0':
						case '1':
							bits[j] = 1
						default:
							return nil, perr(0, "dep digit %q", ch)
						}
					}
					spec.DepBits[i] = bits
				}
			}
			b.AddCell(spec)
			cells++
		default:
			return nil, perr(fieldCol(line, 0), "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, &ParseError{Line: lineNo + 1, Err: &LimitError{Quantity: "line-bytes", Value: lim.MaxLineBytes + 1, Limit: lim.MaxLineBytes}}
		}
		return nil, fmt.Errorf("hypergraph: %w", err)
	}
	if b == nil {
		return nil, &ParseError{Msg: "missing 'circuit' line (empty or truncated file?)"}
	}
	return b.Build()
}
