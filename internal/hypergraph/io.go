package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The mapped-circuit text format (".clb") is line oriented:
//
//	# comment
//	circuit s5378
//	input pi0 pi1
//	output w12 w99
//	cell u0 area=1 dff=1 in=pi0,pi1 out=w0,w1 dep=11;01
//
// Each cell line carries its input nets, output nets and the adjacency
// matrix (one row of 0/1 per output, rows separated by ';').

// Write serializes the graph.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", g.Name)
	var ins, outs []string
	for i := range g.Nets {
		switch g.Nets[i].Ext {
		case ExtIn:
			ins = append(ins, g.Nets[i].Name)
		case ExtOut:
			outs = append(outs, g.Nets[i].Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(ins, " "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(outs, " "))
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		inNames := make([]string, len(c.Inputs))
		for i, n := range c.Inputs {
			inNames[i] = g.Nets[n].Name
		}
		outNames := make([]string, len(c.Outputs))
		for i, n := range c.Outputs {
			outNames[i] = g.Nets[n].Name
		}
		rows := make([]string, len(c.Dep))
		for i, d := range c.Dep {
			var sb strings.Builder
			for j := 0; j < d.Len(); j++ {
				if d.Get(j) {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			rows[i] = sb.String()
		}
		replica := ""
		if c.Replica {
			replica = " replica=1"
		}
		fmt.Fprintf(bw, "cell %s area=%d dff=%d%s in=%s out=%s dep=%s\n",
			c.Name, c.Area, c.DFFs, replica,
			strings.Join(inNames, ","), strings.Join(outNames, ","), strings.Join(rows, ";"))
	}
	return bw.Flush()
}

// Read parses the text format and validates the result.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	netOf := func(name string) NetID {
		if id, ok := b.NetByName(name); ok {
			return id
		}
		return b.Net(name)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if b != nil {
				return nil, fmt.Errorf("hypergraph: line %d: duplicate circuit line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("hypergraph: line %d: want 'circuit <name>'", lineNo)
			}
			b = NewBuilder(fields[1])
		case "input":
			if b == nil {
				return nil, fmt.Errorf("hypergraph: line %d: input before circuit", lineNo)
			}
			for _, n := range fields[1:] {
				b.InputNet(n)
			}
		case "output":
			if b == nil {
				return nil, fmt.Errorf("hypergraph: line %d: output before circuit", lineNo)
			}
			for _, n := range fields[1:] {
				b.MarkOutput(netOf(n))
			}
		case "cell":
			if b == nil {
				return nil, fmt.Errorf("hypergraph: line %d: cell before circuit", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("hypergraph: line %d: cell needs a name", lineNo)
			}
			spec := CellSpec{Name: fields[1], Area: 1}
			var depRows []string
			for _, kv := range fields[2:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("hypergraph: line %d: bad attribute %q", lineNo, kv)
				}
				switch key {
				case "area":
					a, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("hypergraph: line %d: area: %v", lineNo, err)
					}
					spec.Area = a
				case "dff":
					d, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("hypergraph: line %d: dff: %v", lineNo, err)
					}
					spec.DFFs = d
				case "replica":
					r, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("hypergraph: line %d: replica: %v", lineNo, err)
					}
					spec.Replica = r != 0
				case "in":
					if val != "" {
						for _, n := range strings.Split(val, ",") {
							spec.Inputs = append(spec.Inputs, netOf(n))
						}
					}
				case "out":
					if val != "" {
						for _, n := range strings.Split(val, ",") {
							spec.Outputs = append(spec.Outputs, netOf(n))
						}
					}
				case "dep":
					depRows = strings.Split(val, ";")
				default:
					return nil, fmt.Errorf("hypergraph: line %d: unknown attribute %q", lineNo, key)
				}
			}
			if depRows != nil {
				spec.DepBits = make([][]int, len(depRows))
				for i, row := range depRows {
					bits := make([]int, len(row))
					for j, ch := range row {
						switch ch {
						case '0':
						case '1':
							bits[j] = 1
						default:
							return nil, fmt.Errorf("hypergraph: line %d: dep digit %q", lineNo, ch)
						}
					}
					spec.DepBits[i] = bits
				}
			}
			b.AddCell(spec)
		default:
			return nil, fmt.Errorf("hypergraph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hypergraph: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("hypergraph: missing 'circuit' line")
	}
	return b.Build()
}
