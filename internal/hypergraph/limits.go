package hypergraph

import (
	"fmt"
	"strings"
)

// Limits bounds the .clb parser's resource consumption against
// hostile or corrupt input: each quantity is capped and the parser
// fails fast with a typed *LimitError (wrapped in a *ParseError with
// the offending line) instead of letting a malformed file drive
// unbounded allocation. The zero value selects generous defaults that
// admit every legitimate mapped circuit.
type Limits struct {
	// MaxLineBytes caps one physical input line (default 16 MiB — dep
	// matrices of wide cells make .clb lines long).
	MaxLineBytes int
	// MaxCells caps the cell count (default 1<<20).
	MaxCells int
	// MaxPins caps one cell's pin count, inputs plus outputs
	// (default 1<<16).
	MaxPins int
	// MaxFanout caps how many cell pins one net may touch
	// (default 1<<20).
	MaxFanout int
	// MaxNets caps the distinct net count (default 1<<21).
	MaxNets int
}

// scanBuf sizes a bufio.Scanner's initial buffer so the line cap
// actually binds: Scanner.Buffer takes max(cap(buf), max) as the
// token limit, so the initial capacity must not exceed MaxLineBytes.
func (l Limits) scanBuf() []byte {
	n := 1 << 16
	if l.MaxLineBytes < n {
		n = l.MaxLineBytes
	}
	return make([]byte, 0, n)
}

func (l Limits) withDefaults() Limits {
	if l.MaxLineBytes == 0 {
		l.MaxLineBytes = 1 << 24
	}
	if l.MaxCells == 0 {
		l.MaxCells = 1 << 20
	}
	if l.MaxPins == 0 {
		l.MaxPins = 1 << 16
	}
	if l.MaxFanout == 0 {
		l.MaxFanout = 1 << 20
	}
	if l.MaxNets == 0 {
		l.MaxNets = 1 << 21
	}
	return l
}

// LimitError reports input that exceeds a parser cap. It is always
// wrapped in a *ParseError carrying the line the cap tripped on.
type LimitError struct {
	// Quantity names the capped resource: "line-bytes", "cells",
	// "pins", "fanout" or "nets".
	Quantity string
	// Value is the observed amount; Limit the configured cap.
	Value, Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s %d exceeds limit %d", e.Quantity, e.Value, e.Limit)
}

// ParseError is a .clb syntax or limit violation with its source
// position: 1-based Line, and where known the 1-based byte Col of the
// offending token.
type ParseError struct {
	Line int
	Col  int
	Msg  string
	Err  error
}

func (e *ParseError) Error() string {
	var sb strings.Builder
	sb.WriteString("hypergraph")
	if e.Line > 0 {
		fmt.Fprintf(&sb, ": line %d", e.Line)
		if e.Col > 0 {
			fmt.Fprintf(&sb, ", col %d", e.Col)
		}
	}
	sb.WriteString(": ")
	if e.Msg != "" {
		sb.WriteString(e.Msg)
		if e.Err != nil {
			fmt.Fprintf(&sb, ": %v", e.Err)
		}
	} else if e.Err != nil {
		fmt.Fprintf(&sb, "%v", e.Err)
	}
	return sb.String()
}

func (e *ParseError) Unwrap() error { return e.Err }

// fieldCol returns the 1-based byte column where the idx-th
// whitespace-separated field of line starts (0 when out of range).
func fieldCol(line string, idx int) int {
	i, field := 0, 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if field == idx {
			return i + 1
		}
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		field++
	}
	return 0
}
