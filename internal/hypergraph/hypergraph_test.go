package hypergraph

import (
	"strings"
	"testing"

	"fpgapart/internal/bitset"
)

// figure1Cell builds the 3-input/2-output cell of Fig. 1: inputs
// {a,b,c}, outputs {X,Y}, A_X = [1 1 0]^T, A_Y = [0 1 1]^T.
func figure1Cell(t *testing.T) (*Graph, CellID) {
	t.Helper()
	b := NewBuilder("fig1")
	a := b.InputNet("a")
	bb := b.InputNet("b")
	c := b.InputNet("c")
	x := b.OutputNet("X")
	y := b.OutputNet("Y")
	id := b.AddCell(CellSpec{
		Name:    "M",
		Inputs:  []NetID{a, bb, c},
		Outputs: []NetID{x, y},
		DepBits: [][]int{{1, 1, 0}, {0, 1, 1}},
	})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, id
}

func TestFigure1ReplicationPotential(t *testing.T) {
	g, id := figure1Cell(t)
	// Inputs a and c each control a single output -> ψ = 2.
	if psi := g.Cell(id).ReplicationPotential(); psi != 2 {
		t.Fatalf("ψ = %d, want 2", psi)
	}
}

func TestFigure2ReplicationPotential(t *testing.T) {
	b := NewBuilder("fig2")
	in := make([]NetID, 5)
	names := []string{"a1", "a2", "a3", "a4", "a5"}
	for i, n := range names {
		in[i] = b.InputNet(n)
	}
	x1 := b.OutputNet("X1")
	x2 := b.OutputNet("X2")
	id := b.AddCell(CellSpec{
		Name:    "F",
		Inputs:  in,
		Outputs: []NetID{x1, x2},
		DepBits: [][]int{{1, 1, 1, 1, 0}, {0, 0, 0, 1, 1}},
	})
	g := b.MustBuild()
	if psi := g.Cell(id).ReplicationPotential(); psi != 4 {
		t.Fatalf("ψ = %d, want 4 (Fig. 2)", psi)
	}
}

func TestSingleOutputPotentialZero(t *testing.T) {
	b := NewBuilder("single")
	a := b.InputNet("a")
	z := b.OutputNet("z")
	id := b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z}})
	g := b.MustBuild()
	if psi := g.Cell(id).ReplicationPotential(); psi != 0 {
		t.Fatalf("single-output ψ = %d, want 0", psi)
	}
}

func TestInputsFor(t *testing.T) {
	g, id := figure1Cell(t)
	c := g.Cell(id)
	if got := c.InputsFor([]int{0}); !got.Equal(bitset.FromBits(1, 1, 0)) {
		t.Fatalf("InputsFor(X) = %v", got)
	}
	if got := c.InputsFor([]int{1}); !got.Equal(bitset.FromBits(0, 1, 1)) {
		t.Fatalf("InputsFor(Y) = %v", got)
	}
	if got := c.InputsFor(nil); !got.Equal(bitset.FromBits(1, 1, 1)) {
		t.Fatalf("InputsFor(all) = %v", got)
	}
}

func TestCounts(t *testing.T) {
	g, _ := figure1Cell(t)
	if g.NumCells() != 1 || g.NumNets() != 5 || g.NumTerminals() != 5 {
		t.Fatalf("counts: cells=%d nets=%d terms=%d", g.NumCells(), g.NumNets(), g.NumTerminals())
	}
	if g.TotalArea() != 1 {
		t.Fatalf("area = %d", g.TotalArea())
	}
	// 5 cell pins + 5 terminal pins.
	if g.NumPins() != 10 {
		t.Fatalf("pins = %d, want 10", g.NumPins())
	}
	if g.NumDFF() != 0 {
		t.Fatalf("dff = %d", g.NumDFF())
	}
}

func TestCellNetsDeduplicates(t *testing.T) {
	b := NewBuilder("dup")
	a := b.InputNet("a")
	z := b.OutputNet("z")
	id := b.AddCell(CellSpec{Inputs: []NetID{a, a}, Outputs: []NetID{z}})
	g := b.MustBuild()
	nets := g.CellNets(id)
	if len(nets) != 2 {
		t.Fatalf("CellNets = %v, want 2 distinct nets", nets)
	}
}

func TestValidateRejectsTwoDrivers(t *testing.T) {
	b := NewBuilder("bad")
	a := b.InputNet("a")
	z := b.OutputNet("z")
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z}})
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "drivers") {
		t.Fatalf("expected multiple-driver error, got %v", err)
	}
}

func TestValidateRejectsUndrivenNet(t *testing.T) {
	b := NewBuilder("bad")
	w := b.Net("w")
	z := b.OutputNet("z")
	b.AddCell(CellSpec{Inputs: []NetID{w}, Outputs: []NetID{z}})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undriven-net error")
	}
}

func TestValidateRejectsSinklessNet(t *testing.T) {
	b := NewBuilder("bad")
	a := b.InputNet("a")
	w := b.Net("w")
	z := b.OutputNet("z")
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{w}})
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "sinks") {
		t.Fatalf("expected sinkless-net error, got %v", err)
	}
}

func TestValidateRejectsDrivenPrimaryInput(t *testing.T) {
	b := NewBuilder("bad")
	a := b.InputNet("a")
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{a}})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected driven-primary-input error")
	}
}

func TestBuilderRejectsDuplicateNetNames(t *testing.T) {
	b := NewBuilder("bad")
	b.Net("w")
	b.Net("w")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate-name error, got %v", err)
	}
}

func TestBuilderDepBitsShapeChecked(t *testing.T) {
	b := NewBuilder("bad")
	a := b.InputNet("a")
	z := b.OutputNet("z")
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z}, DepBits: [][]int{{1}, {1}}})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected DepBits shape error")
	}
}

func TestBuilderDefaultDepIsFull(t *testing.T) {
	b := NewBuilder("full")
	a := b.InputNet("a")
	bb := b.InputNet("b")
	x := b.OutputNet("x")
	y := b.OutputNet("y")
	id := b.AddCell(CellSpec{Inputs: []NetID{a, bb}, Outputs: []NetID{x, y}})
	g := b.MustBuild()
	if psi := g.Cell(id).ReplicationPotential(); psi != 0 {
		t.Fatalf("full-dependence ψ = %d, want 0", psi)
	}
}

func TestMarkOutput(t *testing.T) {
	b := NewBuilder("mark")
	a := b.InputNet("a")
	w := b.Net("w")
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{w}})
	b.MarkOutput(w)
	g := b.MustBuild()
	if g.Nets[w].Ext != ExtOut {
		t.Fatalf("net ext = %v, want output", g.Nets[w].Ext)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, id := figure1Cell(t)
	cl := g.Clone()
	cl.Cells[id].Dep[0].Clear(0)
	cl.Cells[id].Inputs[0] = NilNet
	if !g.Cell(id).Dep[0].Get(0) || g.Cell(id).Inputs[0] == NilNet {
		t.Fatal("Clone shares storage with original")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("original invalidated by clone mutation: %v", err)
	}
}

func TestDistribution(t *testing.T) {
	b := NewBuilder("dist")
	a := b.InputNet("a")
	c := b.InputNet("c")
	z1 := b.OutputNet("z1")
	x := b.OutputNet("x")
	y := b.OutputNet("y")
	p := b.OutputNet("p")
	q := b.OutputNet("q")
	// Single-output cell.
	b.AddCell(CellSpec{Inputs: []NetID{a}, Outputs: []NetID{z1}})
	// Multi-output ψ=0 cell (both outputs depend on both inputs).
	b.AddCell(CellSpec{Inputs: []NetID{a, c}, Outputs: []NetID{x, y}})
	// Multi-output ψ=2 cell.
	b.AddCell(CellSpec{Inputs: []NetID{a, c}, Outputs: []NetID{p, q},
		DepBits: [][]int{{1, 0}, {0, 1}}})
	g := b.MustBuild()
	d := g.Distribution()
	if d.SingleOutput != 1 || d.MultiZero != 1 || d.ByPsi[2] != 1 || d.Total != 3 {
		t.Fatalf("distribution = %+v", d)
	}
	if got := g.ReplicableCells(0); got != 2 {
		t.Fatalf("ReplicableCells(0) = %d, want 2", got)
	}
	if got := g.ReplicableCells(1); got != 1 {
		t.Fatalf("ReplicableCells(1) = %d, want 1", got)
	}
	if got := g.ReplicableCells(3); got != 0 {
		t.Fatalf("ReplicableCells(3) = %d, want 0", got)
	}
}

// chain builds pi -> c0 -> c1 -> po with an extra tap from c0 to po2.
func chain(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("chain")
	pi := b.InputNet("pi")
	w := b.Net("w")
	po := b.OutputNet("po")
	po2 := b.OutputNet("po2")
	b.AddCell(CellSpec{Name: "c0", Inputs: []NetID{pi}, Outputs: []NetID{w}})
	b.AddCell(CellSpec{Name: "c1", Inputs: []NetID{w}, Outputs: []NetID{po}})
	b.AddCell(CellSpec{Name: "c2", Inputs: []NetID{w}, Outputs: []NetID{po2}})
	return b.MustBuild()
}

func TestSubcircuitBasic(t *testing.T) {
	g := chain(t)
	// Take c0 and c1; net w is then fully internal except c2 uses it ->
	// caller marks w as cut.
	sub, err := g.Subcircuit("side0", []InstanceSpec{{Cell: 0}, {Cell: 1}}, func(n NetID) bool {
		return g.Nets[n].Name == "w"
	})
	if err != nil {
		t.Fatalf("Subcircuit: %v", err)
	}
	if sub.NumCells() != 2 {
		t.Fatalf("cells = %d", sub.NumCells())
	}
	// Nets: pi (ExtIn), w (ExtOut, driver inside), po (ExtOut).
	if sub.NumTerminals() != 3 {
		t.Fatalf("terminals = %d, want 3", sub.NumTerminals())
	}
	var w *Net
	for i := range sub.Nets {
		if sub.Nets[i].Name == "w" {
			w = &sub.Nets[i]
		}
	}
	if w == nil || w.Ext != ExtOut {
		t.Fatalf("cut net w: %+v", w)
	}
}

func TestSubcircuitOtherSideGetsExtIn(t *testing.T) {
	g := chain(t)
	sub, err := g.Subcircuit("side1", []InstanceSpec{{Cell: 2}}, func(n NetID) bool {
		return g.Nets[n].Name == "w"
	})
	if err != nil {
		t.Fatalf("Subcircuit: %v", err)
	}
	var w *Net
	for i := range sub.Nets {
		if sub.Nets[i].Name == "w" {
			w = &sub.Nets[i]
		}
	}
	if w == nil || w.Ext != ExtIn {
		t.Fatalf("cut net w on sink side: %+v", w)
	}
}

func TestSubcircuitFunctionalPinPruning(t *testing.T) {
	g, id := figure1Cell(t)
	// A copy carrying only output Y must keep inputs {b,c} and drop a.
	sub, err := g.Subcircuit("copy", []InstanceSpec{{Cell: id, Outputs: []int{1}, Rename: "M$r"}}, nil)
	if err != nil {
		t.Fatalf("Subcircuit: %v", err)
	}
	c := sub.Cell(0)
	if c.Name != "M$r" {
		t.Fatalf("rename failed: %q", c.Name)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("pins = %d in / %d out, want 2/1", len(c.Inputs), len(c.Outputs))
	}
	// Net a must not appear at all.
	for i := range sub.Nets {
		if sub.Nets[i].Name == "a" {
			t.Fatal("floating input net a retained")
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSubcircuitRejectsBadOutputs(t *testing.T) {
	g, id := figure1Cell(t)
	if _, err := g.Subcircuit("bad", []InstanceSpec{{Cell: id, Outputs: []int{5}}}, nil); err == nil {
		t.Fatal("expected out-of-range output error")
	}
	if _, err := g.Subcircuit("bad", []InstanceSpec{{Cell: id, Outputs: []int{}}}, nil); err == nil {
		t.Fatal("expected empty-output error")
	}
	if _, err := g.Subcircuit("bad", []InstanceSpec{{Cell: id, Outputs: []int{1, 1}}}, nil); err == nil {
		t.Fatal("expected duplicate-output error")
	}
}

func TestRebuildConnsMatchesValidate(t *testing.T) {
	g, _ := figure1Cell(t)
	// Corrupt conns, rebuild, re-validate.
	g.Nets[0].Conns = nil
	g.RebuildConns()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after RebuildConns: %v", err)
	}
}

func TestComponents(t *testing.T) {
	g, _ := figure1Cell(t)
	if got := g.Components(); got != 1 {
		t.Fatalf("components = %d, want 1", got)
	}
	// Two disconnected islands.
	b := NewBuilder("two")
	a1 := b.InputNet("a1")
	z1 := b.OutputNet("z1")
	a2 := b.InputNet("a2")
	z2 := b.OutputNet("z2")
	b.AddCell(CellSpec{Inputs: []NetID{a1}, Outputs: []NetID{z1}})
	b.AddCell(CellSpec{Inputs: []NetID{a2}, Outputs: []NetID{z2}})
	g2 := b.MustBuild()
	if got := g2.Components(); got != 2 {
		t.Fatalf("components = %d, want 2", got)
	}
	if got := (&Graph{}).Components(); got != 0 {
		t.Fatalf("empty components = %d", got)
	}
}
