package hypergraph

import (
	"errors"
	"strings"
	"testing"
)

// Each case trips exactly one cap and checks the failure is a
// *ParseError wrapping a *LimitError naming the capped quantity.
func TestReadLimits(t *testing.T) {
	lim := Limits{MaxLineBytes: 128, MaxCells: 2, MaxPins: 4, MaxFanout: 3, MaxNets: 6}
	cases := []struct {
		name     string
		src      string
		quantity string
	}{
		{"cells", "circuit c\ninput a\ncell u0 in=a out=w0\ncell u1 in=w0 out=w1\ncell u2 in=w1 out=w2\n", "cells"},
		{"pins", "circuit c\ninput a b c\ncell u0 in=a,b,c,a,b out=y\n", "pins"},
		{"fanout", "circuit c\ninput a\ncell u0 in=a,a,a,a out=y\n", "fanout"},
		{"nets", "circuit c\ninput a\ncell u0 in=a out=w0,w1,w2\ncell u1 in=w0 out=w3,w4,w5\n", "nets"},
		{"line-bytes", "circuit c\ninput a\ncell u0 in=a out=" + strings.Repeat("w,", 80) + "y\n", "line-bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLimits(strings.NewReader(tc.src), lim)
			if err == nil {
				t.Fatal("want limit error, got nil")
			}
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("want *LimitError, got %T: %v", err, err)
			}
			if le.Quantity != tc.quantity {
				t.Fatalf("quantity = %q, want %q (err: %v)", le.Quantity, tc.quantity, err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) || pe.Line == 0 {
				t.Fatalf("limit error lacks line position: %v", err)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	// A bad attribute carries the column of the token.
	_, err := Read(strings.NewReader("circuit c\ncell u0 area\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 2 || pe.Col != 9 {
		t.Fatalf("pos = line %d col %d, want line 2 col 9", pe.Line, pe.Col)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("message should hint at truncation: %v", err)
	}

	// Empty input names the likely cause.
	_, err = Read(strings.NewReader(""))
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "missing 'circuit'") {
		t.Fatalf("empty input: %v", err)
	}
}
