package techmap

import (
	"fmt"
	"sort"
)

// Simulator evaluates a mapped circuit cycle by cycle, mirroring
// netlist.Simulator so mapping can be verified functionally.
type Simulator struct {
	m     *Mapped
	order []int // LUT evaluation order (indices into flat lut list)
	luts  []*LUT
	state map[string]bool // registered-output net -> value
}

// NewSimulator prepares evaluation order over the mapped LUTs.
func NewSimulator(m *Mapped) (*Simulator, error) {
	var luts []*LUT
	for ci := range m.CLBs {
		for li := range m.CLBs[ci].LUTs {
			luts = append(luts, &m.CLBs[ci].LUTs[li])
		}
	}
	byOut := make(map[string]int, len(luts))
	for i, l := range luts {
		if _, dup := byOut[l.Out]; dup {
			return nil, fmt.Errorf("techmap: net %q driven by two LUTs", l.Out)
		}
		byOut[l.Out] = i
	}
	// Topological order over combinational LUTs.
	color := make([]uint8, len(luts))
	order := make([]int, 0, len(luts))
	var visit func(i int) error
	visit = func(i int) error {
		switch color[i] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("techmap: combinational loop through LUT %q", luts[i].Out)
		}
		color[i] = 1
		if !luts[i].Reg {
			for _, s := range luts[i].Support {
				if di, ok := byOut[s]; ok && !luts[di].Reg {
					if err := visit(di); err != nil {
						return err
					}
				}
			}
		}
		color[i] = 2
		order = append(order, i)
		return nil
	}
	idxs := make([]int, len(luts))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(a, b int) bool { return luts[idxs[a]].Out < luts[idxs[b]].Out })
	for _, i := range idxs {
		if luts[i].Reg {
			color[i] = 2
			continue
		}
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return &Simulator{m: m, order: order, luts: luts, state: make(map[string]bool)}, nil
}

// Reset clears all registered outputs to false.
func (s *Simulator) Reset() {
	for k := range s.state {
		delete(s.state, k)
	}
}

// Step evaluates one clock cycle and returns the primary outputs.
func (s *Simulator) Step(inputs map[string]bool) (map[string]bool, error) {
	values := make(map[string]bool, len(s.luts)+len(s.m.Inputs))
	for _, pi := range s.m.Inputs {
		values[pi] = inputs[pi]
	}
	for _, l := range s.luts {
		if l.Reg {
			values[l.Out] = s.state[l.Out]
		}
	}
	evalLUT := func(l *LUT) (bool, error) {
		in := make([]bool, len(l.Support))
		for i, sn := range l.Support {
			v, ok := values[sn]
			if !ok {
				return false, fmt.Errorf("techmap: net %q read before defined", sn)
			}
			in[i] = v
		}
		return l.Eval(in), nil
	}
	for _, i := range s.order {
		l := s.luts[i]
		if l.Reg {
			continue
		}
		v, err := evalLUT(l)
		if err != nil {
			return nil, err
		}
		values[l.Out] = v
	}
	outs := make(map[string]bool, len(s.m.Outputs))
	for _, po := range s.m.Outputs {
		v, ok := values[po]
		if !ok {
			return nil, fmt.Errorf("techmap: primary output %q unresolved", po)
		}
		outs[po] = v
	}
	for _, l := range s.luts {
		if !l.Reg {
			continue
		}
		v, err := evalLUT(l)
		if err != nil {
			return nil, err
		}
		s.state[l.Out] = v
	}
	return outs, nil
}
