package techmap

import (
	"fmt"
	"math/rand"
	"testing"

	"fpgapart/internal/netlist"
)

// End-to-end: technology-mapped arithmetic circuits still compute
// arithmetic. This exercises wide-gate decomposition, cone covering,
// CLB packing and DFF absorption against ground truth.

func bitsIn(prefix string, w int, v uint64, in map[string]bool) {
	for i := 0; i < w; i++ {
		in[fmt.Sprintf("%s%d", prefix, i)] = v&(1<<uint(i)) != 0
	}
}

func bitsOut(prefix string, w int, out map[string]bool) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if out[fmt.Sprintf("%s%d", prefix, i)] {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestMappedAdderComputesSum(t *testing.T) {
	const w = 8
	n, err := netlist.RippleAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := r.Uint64() & 0xFF
		b := r.Uint64() & 0xFF
		in := map[string]bool{"cin": trial%2 == 0}
		bitsIn("a", w, a, in)
		bitsIn("b", w, b, in)
		out, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		got := bitsOut("s", w, out)
		if out["cout"] {
			got |= 1 << w
		}
		want := a + b
		if trial%2 == 0 {
			want++
		}
		if got != want {
			t.Fatalf("mapped adder: %d+%d = %d, want %d", a, b, got, want)
		}
	}
}

func TestMappedMultiplierComputesProduct(t *testing.T) {
	const w = 6
	n, err := netlist.ArrayMultiplier(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 3, DistantPackFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mul%d: %d gates -> %d CLBs", w, len(n.Gates), m.Graph.NumCells())
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a := r.Uint64() & (1<<w - 1)
		b := r.Uint64() & (1<<w - 1)
		in := map[string]bool{}
		bitsIn("a", w, a, in)
		bitsIn("b", w, b, in)
		out, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := bitsOut("p", 2*w, out); got != a*b {
			t.Fatalf("mapped multiplier: %d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestMappedCounterCounts(t *testing.T) {
	const w = 6
	n, err := netlist.Counter(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.NumDFF() != w {
		t.Fatalf("mapped counter has %d FFs, want %d", m.Graph.NumDFF(), w)
	}
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(0); cyc < 80; cyc++ {
		out, err := sim.Step(map[string]bool{"en": true})
		if err != nil {
			t.Fatal(err)
		}
		if got := bitsOut("q", w, out); got != cyc&(1<<w-1) {
			t.Fatalf("cycle %d: mapped count = %d", cyc, got)
		}
	}
}

func TestMappedALUMatchesGateLevel(t *testing.T) {
	n, err := netlist.ALUSlice(6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gateSim, err := netlist.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	mapSim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		in := map[string]bool{}
		for _, pi := range n.Inputs {
			in[pi] = r.Intn(2) == 1
		}
		want, err1 := gateSim.Step(in)
		got, err2 := mapSim.Step(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: %s differs", trial, k)
			}
		}
	}
}

// Wide BLIF-style LUT gates go through Shannon decomposition; behavior
// must survive mapping.
func TestMappedWideLut(t *testing.T) {
	tt := make([]bool, 1<<7)
	for p := range tt {
		ones := 0
		for b := 0; b < 7; b++ {
			if p&(1<<uint(b)) != 0 {
				ones++
			}
		}
		tt[p] = ones%3 == 1
	}
	ins := []string{"i0", "i1", "i2", "i3", "i4", "i5", "i6"}
	n := &netlist.Netlist{
		Name: "wide", Inputs: ins, Outputs: []string{"y"},
		Gates: []netlist.Gate{{Name: "g", Type: netlist.Lut, Out: "y", Ins: ins, TT: tt}},
	}
	m, err := Map(n, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gateSim, err := netlist.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	mapSim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 64; trial++ {
		in := map[string]bool{}
		for _, pi := range ins {
			in[pi] = r.Intn(2) == 1
		}
		want, err1 := gateSim.Step(in)
		got, err2 := mapSim.Step(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got["y"] != want["y"] {
			t.Fatalf("trial %d: wide LUT mis-mapped", trial)
		}
	}
}

// LUT mapping compresses logic depth (4-input cones absorb several
// gate levels).
func TestMappedDepthBelowGateDepth(t *testing.T) {
	n, err := netlist.RippleAdder(12)
	if err != nil {
		t.Fatal(err)
	}
	gateDepth, err := n.Depth()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lutDepth, err := m.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if lutDepth >= gateDepth {
		t.Fatalf("LUT depth %d should be below gate depth %d", lutDepth, gateDepth)
	}
	if lutDepth < 1 {
		t.Fatalf("depth = %d", lutDepth)
	}
}
