// Package techmap maps gate-level netlists into XC3000-style CLBs:
// combinational logic is covered by LUTs of up to four inputs, D
// flip-flops are absorbed into the CLB whose LUT feeds them, and LUT
// pairs are packed into two-output CLBs sharing at most five distinct
// inputs — the mapped form the partitioner (and the paper) operates
// on. The result carries per-output truth tables so mapping can be
// verified functionally against the source netlist (see Simulator).
package techmap

import (
	"fmt"
	"sort"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
)

// MaxLUTInputs is the per-function fan-in bound (XC3000 F/G
// generators).
const MaxLUTInputs = 4

// MaxCLBInputs is the distinct-input bound of a two-output CLB.
const MaxCLBInputs = 5

// LUT is one mapped function: a truth table over the support nets. A
// registered LUT drives its output through the CLB flip-flop.
type LUT struct {
	Support []string // input net names, position = truth-table bit
	TT      uint16   // truth table: bit i = value at input pattern i
	Out     string   // output net name
	Reg     bool     // output registered (absorbed DFF)
}

// Eval computes the LUT function for the given support values.
func (l *LUT) Eval(in []bool) bool {
	if len(in) != len(l.Support) {
		panic(fmt.Sprintf("techmap: LUT %s evaluated with %d inputs, want %d", l.Out, len(in), len(l.Support)))
	}
	idx := 0
	for i, v := range in {
		if v {
			idx |= 1 << uint(i)
		}
	}
	return l.TT&(1<<uint(idx)) != 0
}

// CLB is one mapped cell: one or two LUTs with at most five distinct
// inputs.
type CLB struct {
	LUTs []LUT
}

// Mapped is the result of technology mapping.
type Mapped struct {
	Graph *hypergraph.Graph
	CLBs  []CLB
	// Inputs/Outputs mirror the source netlist's primary nets that
	// survived mapping.
	Inputs, Outputs []string
}

// Options tunes the mapper.
type Options struct {
	// DistantPackFrac mimics area-driven packers that pair leftovers
	// across regions (0 = only neighboring LUTs pack). Default 0.
	DistantPackFrac float64
	Seed            int64
}

// Map technology-maps the netlist.
func Map(n *netlist.Netlist, opts Options) (*Mapped, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	dec, err := decomposeWide(n)
	if err != nil {
		return nil, err
	}
	luts, err := cover(dec)
	if err != nil {
		return nil, err
	}
	clbs := pack(luts, opts)
	g, err := emit(dec, clbs)
	if err != nil {
		return nil, err
	}
	return &Mapped{
		Graph:   g,
		CLBs:    clbs,
		Inputs:  append([]string(nil), dec.Inputs...),
		Outputs: append([]string(nil), dec.Outputs...),
	}, nil
}

// decomposeWide rewrites gates with fan-in above MaxLUTInputs into
// balanced trees of narrow gates (inverting types become a base-type
// tree plus a final Not).
func decomposeWide(n *netlist.Netlist) (*netlist.Netlist, error) {
	out := &netlist.Netlist{
		Name:    n.Name,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
	}
	fresh := 0
	tmp := func() string {
		fresh++
		return fmt.Sprintf("_tm%d", fresh)
	}
	var tree func(t netlist.GateType, ins []string) string
	tree = func(t netlist.GateType, ins []string) string {
		if len(ins) == 1 {
			return ins[0]
		}
		if len(ins) <= MaxLUTInputs {
			o := tmp()
			out.Gates = append(out.Gates, netlist.Gate{Name: "g_" + o, Type: t, Out: o, Ins: append([]string(nil), ins...)})
			return o
		}
		mid := len(ins) / 2
		a := tree(t, ins[:mid])
		b := tree(t, ins[mid:])
		o := tmp()
		out.Gates = append(out.Gates, netlist.Gate{Name: "g_" + o, Type: t, Out: o, Ins: []string{a, b}})
		return o
	}
	// shannon splits a wide Lut f(x1..xk) into the mux of its two
	// cofactors on the last input, recursing until each piece fits.
	var shannon func(name, outNet string, ins []string, tt []bool)
	shannon = func(name, outNet string, ins []string, tt []bool) {
		if len(ins) <= MaxLUTInputs {
			out.Gates = append(out.Gates, netlist.Gate{Name: name, Type: netlist.Lut, Out: outNet, Ins: append([]string(nil), ins...), TT: tt})
			return
		}
		// Cofactor on the last input: tt is indexed with Ins[0] as bit
		// 0, so the two halves over the remaining inputs interleave.
		k := len(ins) - 1
		f0 := make([]bool, 1<<uint(k))
		f1 := make([]bool, 1<<uint(k))
		for i := range f0 {
			f0[i] = tt[i]
			f1[i] = tt[i|1<<uint(k)]
		}
		n0, n1 := tmp(), tmp()
		shannon(name+"_c0", n0, ins[:k], f0)
		shannon(name+"_c1", n1, ins[:k], f1)
		sel := ins[k]
		nsel, a0, a1 := tmp(), tmp(), tmp()
		out.Gates = append(out.Gates,
			netlist.Gate{Name: name + "_n", Type: netlist.Not, Out: nsel, Ins: []string{sel}},
			netlist.Gate{Name: name + "_a0", Type: netlist.And, Out: a0, Ins: []string{nsel, n0}},
			netlist.Gate{Name: name + "_a1", Type: netlist.And, Out: a1, Ins: []string{sel, n1}},
			netlist.Gate{Name: name + "_o", Type: netlist.Or, Out: outNet, Ins: []string{a0, a1}},
		)
	}
	for i := range n.Gates {
		g := n.Gates[i]
		if len(g.Ins) <= MaxLUTInputs {
			out.Gates = append(out.Gates, g)
			continue
		}
		if g.Type == netlist.Lut {
			shannon(g.Name, g.Out, g.Ins, g.TT)
			continue
		}
		var base netlist.GateType
		invert := false
		switch g.Type {
		case netlist.And, netlist.Or, netlist.Xor:
			base = g.Type
		case netlist.Nand:
			base, invert = netlist.And, true
		case netlist.Nor:
			base, invert = netlist.Or, true
		case netlist.Xnor:
			base, invert = netlist.Xor, true
		default:
			return nil, fmt.Errorf("techmap: gate %q (%v) has unsupported wide fan-in %d", g.Name, g.Type, len(g.Ins))
		}
		root := tree(base, g.Ins)
		if invert {
			out.Gates = append(out.Gates, netlist.Gate{Name: g.Name, Type: netlist.Not, Out: g.Out, Ins: []string{root}})
		} else {
			// The tree's root must drive the original output net:
			// rename the last emitted gate.
			last := &out.Gates[len(out.Gates)-1]
			last.Name = g.Name
			last.Out = g.Out
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("techmap: decomposition broke the netlist: %w", err)
	}
	return out, nil
}

// cover collapses combinational cones into LUTs with at most
// MaxLUTInputs support nets (inlining by logic duplication, as LUT
// mappers do), absorbs flip-flops into their feeding LUT when that LUT
// has no other fanout, and finally sweeps logic that no primary output
// or live flip-flop observes.
func cover(n *netlist.Netlist) ([]LUT, error) {
	drivers, err := n.DriverIndex()
	if err != nil {
		return nil, err
	}
	fanout := make(map[string]int)
	for i := range n.Gates {
		for _, in := range n.Gates[i].Ins {
			fanout[in]++
		}
	}
	for _, po := range n.Outputs {
		fanout[po]++
	}

	// lutOf[net] = index into luts of the LUT driving net.
	lutOf := make(map[string]int)
	var luts []LUT

	evalCone := func(support []string, root string) (uint16, error) {
		// Evaluate the cone driving root over every support pattern by
		// recursive interpretation of the gates.
		pos := make(map[string]int, len(support))
		for i, s := range support {
			pos[s] = i
		}
		var tt uint16
		for pattern := 0; pattern < 1<<uint(len(support)); pattern++ {
			var eval func(net string) (bool, error)
			memo := make(map[string]bool)
			eval = func(net string) (bool, error) {
				if p, ok := pos[net]; ok {
					return pattern&(1<<uint(p)) != 0, nil
				}
				if v, ok := memo[net]; ok {
					return v, nil
				}
				gi, ok := drivers[net]
				if !ok || gi < 0 {
					return false, fmt.Errorf("techmap: cone support missing net %q", net)
				}
				g := &n.Gates[gi]
				ins := make([]bool, len(g.Ins))
				for i, in := range g.Ins {
					v, err := eval(in)
					if err != nil {
						return false, err
					}
					ins[i] = v
				}
				v := g.Eval(ins)
				memo[net] = v
				return v, nil
			}
			v, err := eval(root)
			if err != nil {
				return 0, err
			}
			if v {
				tt |= 1 << uint(pattern)
			}
		}
		return tt, nil
	}

	order, err := topoCombOrder(n, drivers)
	if err != nil {
		return nil, err
	}
	for _, gi := range order {
		g := &n.Gates[gi]
		// Build the support: every distinct input starts as a boundary
		// net (one reference each); inlining a fan-in LUT's cone (by
		// duplication — the fan-in LUT survives for its other users and
		// is swept later if none remain) trades that reference for
		// references to the cone's support, accepted only while the
		// boundary stays within MaxLUTInputs.
		ref := make(map[string]int, MaxLUTInputs)
		for _, in := range g.Ins {
			if _, dup := ref[in]; !dup {
				ref[in] = 1
			}
		}
		for _, in := range g.Ins {
			li, isLUT := lutOf[in]
			if !isLUT || luts[li].Reg || ref[in] != 1 {
				continue // not inlineable, or another cone needs this boundary
			}
			size := len(ref) - 1
			for _, s := range luts[li].Support {
				if ref[s] == 0 {
					size++
				}
			}
			if size > MaxLUTInputs {
				continue
			}
			delete(ref, in)
			for _, s := range luts[li].Support {
				ref[s]++
			}
		}
		support := make([]string, 0, len(ref))
		for s := range ref {
			support = append(support, s)
		}
		sort.Strings(support)
		if len(support) > MaxLUTInputs {
			return nil, fmt.Errorf("techmap: gate %q support %d exceeds %d after decomposition",
				g.Name, len(support), MaxLUTInputs)
		}
		tt, err := evalCone(support, g.Out)
		if err != nil {
			return nil, err
		}
		lutOf[g.Out] = len(luts)
		luts = append(luts, LUT{Support: support, TT: tt, Out: g.Out})
	}

	// Flip-flop absorption.
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if g.Type != netlist.Dff {
			continue
		}
		src := g.Ins[0]
		if li, ok := lutOf[src]; ok && fanout[src] == 1 && !luts[li].Reg {
			luts[li].Reg = true
			luts[li].Out = g.Out
			delete(lutOf, src)
			lutOf[g.Out] = li
			continue
		}
		// Standalone flip-flop: identity LUT, registered.
		lutOf[g.Out] = len(luts)
		luts = append(luts, LUT{Support: []string{src}, TT: 0b10, Out: g.Out, Reg: true})
	}

	// Sweep: keep only LUTs observable from a primary output, walking
	// backwards through supports (and through flip-flops).
	live := make(map[string]bool, len(n.Outputs))
	work := append([]string(nil), n.Outputs...)
	for _, po := range n.Outputs {
		live[po] = true
	}
	for len(work) > 0 {
		net := work[len(work)-1]
		work = work[:len(work)-1]
		li, ok := lutOf[net]
		if !ok {
			continue // primary input
		}
		for _, s := range luts[li].Support {
			if !live[s] {
				live[s] = true
				work = append(work, s)
			}
		}
	}
	final := make([]LUT, 0, len(luts))
	for li := range luts {
		if live[luts[li].Out] {
			final = append(final, luts[li])
		}
	}
	return final, nil
}

// topoCombOrder returns combinational gates in topological order.
func topoCombOrder(n *netlist.Netlist, drivers map[string]int) ([]int, error) {
	color := make([]uint8, len(n.Gates))
	order := make([]int, 0, len(n.Gates))
	var visit func(gi int) error
	visit = func(gi int) error {
		switch color[gi] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("techmap: combinational cycle at %q", n.Gates[gi].Name)
		}
		color[gi] = 1
		for _, in := range n.Gates[gi].Ins {
			if di, ok := drivers[in]; ok && di >= 0 && n.Gates[di].Type != netlist.Dff {
				if err := visit(di); err != nil {
					return err
				}
			}
		}
		color[gi] = 2
		order = append(order, gi)
		return nil
	}
	for gi := range n.Gates {
		if n.Gates[gi].Type == netlist.Dff {
			color[gi] = 2
			continue
		}
		if err := visit(gi); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// emit builds the mapped hypergraph from the packed CLBs. Primary
// inputs that lost all their sinks during covering are dropped.
func emit(n *netlist.Netlist, clbs []CLB) (*hypergraph.Graph, error) {
	b := hypergraph.NewBuilder(n.Name)
	poSet := make(map[string]bool, len(n.Outputs))
	for _, po := range n.Outputs {
		poSet[po] = true
	}
	// Which nets are actually used by the mapped cells?
	used := make(map[string]bool)
	for ci := range clbs {
		for _, l := range clbs[ci].LUTs {
			used[l.Out] = true
			for _, s := range l.Support {
				used[s] = true
			}
		}
	}
	netID := make(map[string]hypergraph.NetID)
	for _, pi := range n.Inputs {
		if used[pi] {
			netID[pi] = b.InputNet(pi)
		}
	}
	getNet := func(name string) hypergraph.NetID {
		if id, ok := netID[name]; ok {
			return id
		}
		id := b.Net(name)
		netID[name] = id
		return id
	}
	for ci, c := range clbs {
		var inputs []hypergraph.NetID
		pos := make(map[string]int)
		var inputNames []string
		for _, l := range c.LUTs {
			for _, s := range l.Support {
				if _, ok := pos[s]; !ok {
					pos[s] = len(inputs)
					inputNames = append(inputNames, s)
					inputs = append(inputs, getNet(s))
				}
			}
		}
		outputs := make([]hypergraph.NetID, len(c.LUTs))
		dep := make([][]int, len(c.LUTs))
		dffs := 0
		for oi, l := range c.LUTs {
			outputs[oi] = getNet(l.Out)
			row := make([]int, len(inputs))
			for _, s := range l.Support {
				row[pos[s]] = 1
			}
			dep[oi] = row
			if l.Reg {
				dffs++
			}
		}
		_ = inputNames
		b.AddCell(hypergraph.CellSpec{
			Name:    fmt.Sprintf("clb%d", ci),
			Inputs:  inputs,
			Outputs: outputs,
			DepBits: dep,
			DFFs:    dffs,
		})
	}
	// Mark primary outputs.
	var poNames []string
	for po := range poSet {
		poNames = append(poNames, po)
	}
	sort.Strings(poNames)
	piSet := make(map[string]bool, len(n.Inputs))
	for _, pi := range n.Inputs {
		piSet[pi] = true
	}
	for _, po := range poNames {
		id, ok := netID[po]
		if !ok {
			return nil, fmt.Errorf("techmap: primary output %q vanished during mapping", po)
		}
		if piSet[po] {
			continue // PO aliasing a PI stays an input net
		}
		b.MarkOutput(id)
	}
	return b.Build()
}

// Depth returns the maximum LUT depth of the mapped circuit: the
// longest LUT-count path from a primary input or register output to a
// primary output or register input — the first-order delay metric of
// LUT mapping.
func (m *Mapped) Depth() (int, error) {
	sim, err := NewSimulator(m)
	if err != nil {
		return 0, err
	}
	level := make(map[string]int, len(sim.luts))
	max := 0
	for _, i := range sim.order {
		l := sim.luts[i]
		if l.Reg {
			continue
		}
		d := 0
		for _, s := range l.Support {
			if v, ok := level[s]; ok && v > d {
				d = v
			}
		}
		d++
		level[l.Out] = d
		if d > max {
			max = d
		}
	}
	return max, nil
}
