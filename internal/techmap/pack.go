package techmap

import (
	"math/rand"
)

// pack groups LUTs into CLBs: pairs with at most MaxCLBInputs distinct
// support nets and no combinational feedback through the cell,
// preferring partners that share inputs (as real packers do to satisfy
// the five-input bound). With DistantPackFrac > 0, a fraction of pairs
// is drawn from a wider region, mimicking area-driven leftover packing.
func pack(luts []LUT, opts Options) []CLB {
	r := rand.New(rand.NewSource(opts.Seed))
	used := make([]bool, len(luts))
	var clbs []CLB

	unionSize := func(a, b *LUT) int {
		m := make(map[string]bool, len(a.Support)+len(b.Support))
		for _, s := range a.Support {
			m[s] = true
		}
		for _, s := range b.Support {
			m[s] = true
		}
		return len(m)
	}
	sharedCount := func(a, b *LUT) int {
		m := make(map[string]bool, len(a.Support))
		for _, s := range a.Support {
			m[s] = true
		}
		k := 0
		for _, s := range b.Support {
			if m[s] {
				k++
			}
		}
		return k
	}
	feeds := func(a, b *LUT) bool {
		for _, s := range b.Support {
			if s == a.Out {
				return true
			}
		}
		return false
	}
	canPack := func(i, j int) bool {
		a, b := &luts[i], &luts[j]
		if unionSize(a, b) > MaxCLBInputs {
			return false
		}
		return !feeds(a, b) && !feeds(b, a)
	}

	for i := range luts {
		if used[i] {
			continue
		}
		used[i] = true
		partner := -1
		distant := opts.DistantPackFrac > 0 && r.Float64() < opts.DistantPackFrac
		for try := 0; try < 16; try++ {
			var j int
			if distant {
				j = r.Intn(len(luts))
			} else {
				span := 12
				if i+1+span > len(luts) {
					span = len(luts) - i - 1
				}
				if span <= 0 {
					break
				}
				j = i + 1 + r.Intn(span)
			}
			if used[j] || j == i || !canPack(i, j) {
				continue
			}
			if partner < 0 || sharedCount(&luts[i], &luts[j]) > sharedCount(&luts[i], &luts[partner]) {
				partner = j
			}
			if try >= 8 && partner >= 0 {
				break
			}
		}
		if partner >= 0 {
			used[partner] = true
			clbs = append(clbs, CLB{LUTs: []LUT{luts[i], luts[partner]}})
		} else {
			clbs = append(clbs, CLB{LUTs: []LUT{luts[i]}})
		}
	}
	return clbs
}
