package techmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgapart/internal/netlist"
)

func fullAdder() *netlist.Netlist {
	return &netlist.Netlist{
		Name:    "fa",
		Inputs:  []string{"a", "b", "cin"},
		Outputs: []string{"s", "cout"},
		Gates: []netlist.Gate{
			{Name: "x1", Type: netlist.Xor, Out: "ab", Ins: []string{"a", "b"}},
			{Name: "x2", Type: netlist.Xor, Out: "s", Ins: []string{"ab", "cin"}},
			{Name: "a1", Type: netlist.And, Out: "t1", Ins: []string{"a", "b"}},
			{Name: "a2", Type: netlist.And, Out: "t2", Ins: []string{"ab", "cin"}},
			{Name: "o1", Type: netlist.Or, Out: "cout", Ins: []string{"t1", "t2"}},
		},
	}
}

func TestMapFullAdder(t *testing.T) {
	m, err := Map(fullAdder(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both outputs are 3-input functions of {a,b,cin}: the cover should
	// collapse to at most 2 LUTs, packable into a single CLB.
	if got := m.Graph.NumCells(); got != 1 {
		t.Fatalf("cells = %d, want 1 (s and cout share a CLB)", got)
	}
	if m.Graph.NumTerminals() != 5 {
		t.Fatalf("terminals = %d, want 5", m.Graph.NumTerminals())
	}
}

func TestMapEquivalenceFullAdder(t *testing.T) {
	fa := fullAdder()
	m, err := Map(fa, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := map[string]bool{"a": v&1 == 1, "b": v&2 == 2, "cin": v&4 == 4}
		want, err := netlist.Evaluate(fa, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("vector %d: %s = %v, want %v", v, k, got[k], want[k])
			}
		}
	}
}

func TestLUTEval(t *testing.T) {
	l := LUT{Support: []string{"a", "b"}, TT: 0b0110, Out: "y"} // xor
	cases := [][3]bool{{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false}}
	for _, c := range cases {
		if got := l.Eval([]bool{c[0], c[1]}); got != c[2] {
			t.Fatalf("xor(%v,%v) = %v", c[0], c[1], got)
		}
	}
}

func TestDecomposeWideGate(t *testing.T) {
	n := &netlist.Netlist{
		Name:    "wide",
		Inputs:  []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		Outputs: []string{"y"},
		Gates: []netlist.Gate{
			{Name: "big", Type: netlist.Nand, Out: "y", Ins: []string{"a", "b", "c", "d", "e", "f", "g", "h"}},
		},
	}
	m, err := Map(n, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Graph.Cells {
		if l := len(m.Graph.Cells[i].Inputs); l > MaxCLBInputs {
			t.Fatalf("cell %d has %d inputs", i, l)
		}
	}
	// Behavior: y = nand over 8 inputs.
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	allOnes := map[string]bool{}
	for _, pi := range n.Inputs {
		allOnes[pi] = true
	}
	out, err := sim.Step(allOnes)
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != false {
		t.Fatal("nand of all ones should be false")
	}
	allOnes["d"] = false
	out, err = sim.Step(allOnes)
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != true {
		t.Fatal("nand with a zero input should be true")
	}
}

func TestDFFAbsorption(t *testing.T) {
	// LUT feeding only a flip-flop should merge into one registered CLB
	// output.
	n := &netlist.Netlist{
		Name:    "reg",
		Inputs:  []string{"a", "b"},
		Outputs: []string{"q"},
		Gates: []netlist.Gate{
			{Name: "g", Type: netlist.And, Out: "w", Ins: []string{"a", "b"}},
			{Name: "f", Type: netlist.Dff, Out: "q", Ins: []string{"w"}},
		},
	}
	m, err := Map(n, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.NumCells() != 1 {
		t.Fatalf("cells = %d, want 1 (absorbed DFF)", m.Graph.NumCells())
	}
	if m.Graph.NumDFF() != 1 {
		t.Fatalf("dffs = %d, want 1", m.Graph.NumDFF())
	}
	sim, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Step(map[string]bool{"a": true, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if out["q"] {
		t.Fatal("registered output should lag one cycle")
	}
	out, err = sim.Step(map[string]bool{"a": false, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out["q"] {
		t.Fatal("q should now show last cycle's AND")
	}
}

func TestStandaloneDFF(t *testing.T) {
	// A flip-flop fed by a multi-fanout net becomes its own cell.
	n := &netlist.Netlist{
		Name:    "ff2",
		Inputs:  []string{"a", "b"},
		Outputs: []string{"q", "y"},
		Gates: []netlist.Gate{
			{Name: "g", Type: netlist.And, Out: "w", Ins: []string{"a", "b"}},
			{Name: "f", Type: netlist.Dff, Out: "q", Ins: []string{"w"}},
			{Name: "h", Type: netlist.Not, Out: "y", Ins: []string{"w"}},
		},
	}
	m, err := Map(n, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.NumDFF() != 1 {
		t.Fatalf("dffs = %d", m.Graph.NumDFF())
	}
	if err := m.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMappedCellLimits(t *testing.T) {
	n, err := netlist.Random(netlist.RandomParams{Gates: 400, Inputs: 16, Outputs: 8, DffFrac: 0.15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 5, DistantPackFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Graph.Cells {
		c := &m.Graph.Cells[i]
		if len(c.Inputs) > MaxCLBInputs || len(c.Outputs) > 2 {
			t.Fatalf("cell %s: %d in / %d out", c.Name, len(c.Inputs), len(c.Outputs))
		}
		if c.DFFs > 2 {
			t.Fatalf("cell %s: %d flip-flops", c.Name, c.DFFs)
		}
	}
	// Mapping should compress the gate count substantially.
	if m.Graph.NumCells() >= n.Stats().Gates {
		t.Fatalf("no compression: %d cells from %d gates", m.Graph.NumCells(), n.Stats().Gates)
	}
}

// The central property: mapping preserves sequential behavior on
// random circuits over random stimulus.
func TestPropertyMapPreservesBehavior(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		n, err := netlist.Random(netlist.RandomParams{
			Gates: 120, Inputs: 8, Outputs: 5, DffFrac: 0.2, Seed: seed,
		})
		if err != nil {
			return false
		}
		m, err := Map(n, Options{Seed: seed, DistantPackFrac: 0.15})
		if err != nil {
			return false
		}
		if err := m.Graph.Validate(); err != nil {
			return false
		}
		gateSim, err := netlist.NewSimulator(n)
		if err != nil {
			return false
		}
		mapSim, err := NewSimulator(m)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed + 99))
		for cyc := 0; cyc < 12; cyc++ {
			in := map[string]bool{}
			for _, pi := range n.Inputs {
				in[pi] = r.Intn(2) == 1
			}
			want, err1 := gateSim.Step(in)
			got, err2 := mapSim.Step(in)
			if err1 != nil || err2 != nil {
				return false
			}
			for k := range want {
				if got[k] != want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Mapped circuits must show the Fig. 3 ingredients — a meaningful
// population of multi-output cells with positive replication
// potential. (A greedy cover packs less densely than XACT's ~85%
// two-output CLBs; the bench generator models that density directly.)
func TestMappedDistributionShape(t *testing.T) {
	n, err := netlist.Random(netlist.RandomParams{Gates: 1500, Inputs: 24, Outputs: 10, DffFrac: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Graph.Distribution()
	multi := d.Total - d.SingleOutput
	if frac := float64(multi) / float64(d.Total); frac < 0.2 {
		t.Fatalf("multi-output fraction = %.2f, want ≥ 0.2", frac)
	}
	psiPos := 0
	for _, c := range d.ByPsi {
		psiPos += c
	}
	if psiPos == 0 {
		t.Fatal("no cells with positive replication potential")
	}
}
