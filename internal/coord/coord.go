// Package coord fans one partitioning job's solution attempts out to a
// fleet of kpartd workers over the existing HTTP/JSON API, preserving
// the engine's determinism contract end to end.
//
// The distribution unit is a single solution attempt: attempt i of a
// search with base seed S is posted to a worker as a Solutions=1
// synchronous search with seed S + i*kway.SeedStride. Because every
// attempt derives all randomness from that seed alone (the exported
// attempt→seed mapping is fixed forever), the worker returns the
// byte-identical solution the local engine would fold at index i — so
// retrying an attempt on a different worker, hedging it against a
// straggler, or re-sharding a dead worker's attempts over the
// survivors cannot change the result, only its arrival time. The
// outcomes fold through the same index-ordered reducer
// (internal/search) the local engine uses, giving a coordinator run
// the byte-identical fixed-seed result of a local run.
//
// Failure handling distinguishes three classes:
//
//   - Deterministic outcomes (HTTP 422 infeasible, 400 malformed) are
//     final: the same request would fail the same way anywhere, so
//     they are never retried. Infeasible folds as a failed attempt,
//     malformed aborts the job.
//   - Transient outcomes (connection errors, 429/503 with Retry-After,
//     5xx, worker timeouts) are retried on the next worker in the ring
//     with jittered exponential backoff, up to Config.Tries attempts.
//   - Exhaustion (every try failed transiently) falls back to the
//     local engine when a Local hook is installed, or aborts the job.
//
// Hedging bounds tail latency: when a request has been in flight for
// Config.HedgeAfter, a duplicate is launched at the next worker and
// the first completed response wins — safe precisely because both
// legs compute the same bytes.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/kway"
	"fpgapart/internal/search"
	"fpgapart/internal/server"
	"fpgapart/internal/span"
	"fpgapart/internal/telemetry"
	"fpgapart/internal/trace"
)

// Metric names exported by the coordinator.
const (
	MetricAttempts       = "fpgapart_coord_attempts_total"
	MetricRetries        = "fpgapart_coord_retries_total"
	MetricHedges         = "fpgapart_coord_hedges_total"
	MetricFallbacks      = "fpgapart_coord_local_fallbacks_total"
	MetricAttemptSeconds = "fpgapart_coord_attempt_seconds"
)

// Attempt outcome labels for MetricAttempts.
const (
	OutcomeOK         = "ok"
	OutcomeInfeasible = "infeasible"
	OutcomeFatal      = "fatal"
	OutcomeFallback   = "local_fallback"
	OutcomeExhausted  = "exhausted"
)

// Metrics holds the coordinator's instruments. A nil *Metrics disables
// instrumentation (every recording helper is nil-safe).
type Metrics struct {
	attempts   *telemetry.CounterVec
	retries    *telemetry.Counter
	hedges     *telemetry.Counter
	fallbacks  *telemetry.Counter
	attemptSec *telemetry.Histogram
}

// NewMetrics registers the coordinator's instruments in r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		attempts:   r.CounterVec(MetricAttempts, "Distributed solution attempts by final outcome.", "outcome"),
		retries:    r.Counter(MetricRetries, "Attempt retries after transient worker failures."),
		hedges:     r.Counter(MetricHedges, "Hedged duplicate requests launched against stragglers."),
		fallbacks:  r.Counter(MetricFallbacks, "Attempts run on the local engine after the worker pool was exhausted."),
		attemptSec: r.Histogram(MetricAttemptSeconds, "Latency of successful remote attempt requests.", telemetry.LatencyBuckets()),
	}
}

func (m *Metrics) attempt(outcome string) {
	if m != nil {
		m.attempts.With(outcome).Inc()
	}
}

func (m *Metrics) retry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *Metrics) hedge() {
	if m != nil {
		m.hedges.Inc()
	}
}

func (m *Metrics) fallback() {
	if m != nil {
		m.fallbacks.Inc()
	}
}

func (m *Metrics) latency(seconds float64) {
	if m != nil {
		m.attemptSec.Observe(seconds)
	}
}

// Config sizes the coordinator. The zero value of every optional field
// selects a conservative default.
type Config struct {
	// Workers is the list of worker base URLs (http://host:port). At
	// least one is required. Attempt i's try k is posted to
	// Workers[(i+k) % len(Workers)], so a dead worker's attempts
	// re-shard deterministically over the survivors.
	Workers []string
	// Client issues the HTTP requests (default &http.Client{}; the
	// per-request deadline comes from AttemptTimeout, not the client).
	Client *http.Client
	// AttemptTimeout bounds one remote attempt request, and is
	// forwarded as the worker-side search budget (default 60s).
	AttemptTimeout time.Duration
	// Tries is the number of workers an attempt is offered to before
	// the coordinator gives up on the pool (default 3, capped at
	// len(Workers) implicitly by the ring walk revisiting workers).
	Tries int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between tries (defaults 100ms and 5s). A worker's Retry-After
	// hint is honored up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeAfter launches a duplicate request at the next worker when
	// the primary has been in flight this long (0 disables hedging;
	// it also stays off with a single worker).
	HedgeAfter time.Duration
	// Concurrency bounds in-flight attempts (default 2*len(Workers)).
	Concurrency int
	// Logger receives retry/hedge/fallback decisions (nil discards).
	Logger *slog.Logger
	// Metrics instruments the coordinator (nil disables).
	Metrics *Metrics
}

// Pool distributes jobs over the worker fleet. Its Distribute method
// matches server.Config.Distribute.
type Pool struct {
	cfg    Config
	client *http.Client
	log    *slog.Logger
	met    *Metrics
	local  func(ctx context.Context, req *server.JobRequest) (*server.JobResult, error)
}

// New validates the worker list and builds a Pool.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("coord: at least one worker URL is required")
	}
	workers := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("coord: worker %q is not an http(s) URL", cfg.Workers[i])
		}
		workers[i] = w
	}
	cfg.Workers = workers
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 60 * time.Second
	}
	if cfg.Tries == 0 {
		cfg.Tries = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 2 * len(cfg.Workers)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Pool{cfg: cfg, client: cfg.Client, log: cfg.Logger, met: cfg.Metrics}, nil
}

// SetLocal installs the graceful-degradation hook: when every try of
// an attempt fails transiently (the whole pool is dead or overloaded),
// the attempt runs on fn instead of failing the job. Typically this is
// the coordinating server's own engine (server.LocalAttempt). Must be
// called before Distribute is first invoked.
func (p *Pool) SetLocal(fn func(ctx context.Context, req *server.JobRequest) (*server.JobResult, error)) {
	p.local = fn
}

// attemptError marks a remote attempt that completed deterministically
// without a feasible solution (HTTP 422): it folds into the reduction
// as a failed attempt, exactly like a local infeasible attempt, and is
// never retried — the outcome is a pure function of the attempt seed.
type attemptError struct{ msg string }

func (e *attemptError) Error() string { return e.msg }

// Distribute runs one job's search by fanning its attempts over the
// worker pool and folding the outcomes through the deterministic
// index-ordered reducer. It matches server.Config.Distribute: req is
// the original submission (circuit text intact, for forwarding), opts
// the parsed options carrying the durability plumbing
// (Checkpoint/CheckpointEvery/Resume) and the search shape
// (Solutions/Seed/MaxStale).
func (p *Pool) Distribute(ctx context.Context, req *server.JobRequest, opts core.Options) (*server.JobResult, error) {
	if req == nil {
		return nil, errors.New("coord: nil request")
	}
	if opts.Solutions < 0 {
		return nil, fmt.Errorf("coord: Solutions must be non-negative, got %d", opts.Solutions)
	}
	solutions := opts.Solutions
	if solutions == 0 {
		// Mirror the local engine's default so the coordinator runs the
		// same defaulted search shape (and checkpoint identity) it would.
		solutions = kway.DefaultSolutions
	}
	rid := server.RequestIDFromContext(ctx)
	p.log.Info("distributing search", "request_id", rid, "attempts", solutions, "seed", opts.Seed, "pool", len(p.cfg.Workers))

	// Fold-side aggregates, maintained by Observe inside the
	// single-threaded reducer — the same bookkeeping the local engine
	// keeps, so checkpoints written here resume interchangeably.
	var (
		feasible, failed          int
		costMin, costMax, costSum float64
		firstErr                  error
		panickedSeeds             []int64
	)
	drv := search.Driver[*server.JobResult]{
		NewAttempt: func() search.AttemptFunc[*server.JobResult] {
			return func(ctx context.Context, attempt int, seed int64) (*server.JobResult, error) {
				return p.runAttempt(ctx, req, attempt, seed)
			}
		},
		Better: betterResult,
		// Only a deterministic infeasible attempt (or a contained local
		// panic) may fold as a failure; anything else — malformed
		// request, pool exhaustion — would silently change the reduction
		// relative to a local run, so it aborts the job instead.
		Fatal: func(err error) bool {
			var ae *attemptError
			var pe *search.PanicError
			return !errors.As(err, &ae) && !errors.As(err, &pe)
		},
		Observe: func(attempt int, sol *server.JobResult, err error, improved bool) {
			if err != nil {
				failed++
				if firstErr == nil {
					firstErr = err
				}
				var perr *search.PanicError
				panicked := errors.As(err, &perr)
				if panicked {
					panickedSeeds = append(panickedSeeds, perr.Seed)
				}
				if opts.Trace != nil {
					opts.Trace.Event(trace.Event{Kind: trace.KindSolution, Attempt: attempt, Reason: err.Error(), Panic: panicked})
				}
				return
			}
			feasible++
			cost := sol.DeviceCost
			if feasible == 1 || cost < costMin {
				costMin = cost
			}
			if cost > costMax {
				costMax = cost
			}
			costSum += cost
			if opts.Trace != nil {
				ev := trace.Event{
					Kind: trace.KindSolution, Attempt: attempt,
					Feasible: true, Cost: cost, Parts: len(sol.Parts), Improved: improved,
				}
				if sol.TopoCost != nil {
					ev.Topo, ev.HasTopo = *sol.TopoCost, true
				}
				opts.Trace.Event(ev)
			}
		},
	}

	if cp := opts.Resume; cp != nil {
		if cp.Seed != opts.Seed || cp.Solutions != solutions {
			return nil, fmt.Errorf("coord: checkpoint is for seed %d / %d solutions, options say seed %d / %d solutions",
				cp.Seed, cp.Solutions, opts.Seed, solutions)
		}
		if cp.Folded < 0 || cp.Folded > solutions || cp.BestAttempt >= cp.Folded {
			return nil, fmt.Errorf("coord: corrupt checkpoint: folded %d, best attempt %d, %d solutions",
				cp.Folded, cp.BestAttempt, solutions)
		}
		feasible, failed = cp.Accepted, cp.Failed
		costMin, costMax, costSum = cp.CostMin, cp.CostMax, cp.CostSum
		if cp.FirstError != "" {
			firstErr = errors.New(cp.FirstError)
		}
		panickedSeeds = append(panickedSeeds, cp.PanickedSeeds...)
		rs := &search.ResumeState[*server.JobResult]{
			Folded: cp.Folded, BestAttempt: cp.BestAttempt, Stale: cp.Stale,
			Stats: search.Stats{
				Folded: cp.Folded, Accepted: cp.Accepted, Failed: cp.Failed,
				Panicked: cp.Panicked, Improved: cp.Improved,
			},
		}
		if cp.BestAttempt >= 0 {
			// The incumbent is reconstructed by replaying its attempt on
			// the pool: the solution is a pure function of the attempt
			// seed, so the re-fetch is byte-identical to the solution the
			// interrupted run held. The replay's spans land under a
			// "resume" span in the original run's trace (the job span's
			// trace is derived from the checkpoint identity).
			resumeRun := opts.Spans.Start("resume", cp.BestAttempt)
			rctx := ctx
			if opts.Spans.Enabled() {
				resumeRun.Detail(fmt.Sprintf("folded=%d best_attempt=%d", cp.Folded, cp.BestAttempt))
				rctx = span.NewContext(ctx, resumeRun.Scope())
			}
			sol, rerr := p.runAttempt(rctx, req, cp.BestAttempt, opts.Seed+int64(cp.BestAttempt)*kway.SeedStride)
			resumeRun.End()
			if rerr != nil {
				return nil, fmt.Errorf("coord: checkpoint replay of attempt %d failed: %w", cp.BestAttempt, rerr)
			}
			rs.Best, rs.Found = sol, true
		}
		drv.Resume = rs
		if opts.Trace != nil {
			opts.Trace.Event(trace.Event{Kind: trace.KindResume, Attempt: cp.Folded, Folded: cp.Folded, BestAttempt: cp.BestAttempt})
		}
	}

	var sCheckpoint func(search.Progress)
	if opts.Checkpoint != nil {
		every := opts.CheckpointEvery
		if every <= 0 {
			every = 1
		}
		sCheckpoint = func(pr search.Progress) {
			if pr.Folded%every != 0 && pr.Folded != solutions {
				return
			}
			cp := kway.SearchCheckpoint{
				Seed: opts.Seed, Solutions: solutions,
				Folded: pr.Folded, BestAttempt: pr.BestAttempt, Stale: pr.Stale,
				Accepted: pr.Stats.Accepted, Failed: pr.Stats.Failed,
				Panicked: pr.Stats.Panicked, Improved: pr.Stats.Improved,
				CostMin: costMin, CostMax: costMax, CostSum: costSum,
			}
			if firstErr != nil {
				cp.FirstError = firstErr.Error()
			}
			if len(panickedSeeds) > 0 {
				cp.PanickedSeeds = append([]int64(nil), panickedSeeds...)
			}
			if opts.Trace != nil {
				opts.Trace.Event(trace.Event{Kind: trace.KindCheckpoint, Attempt: pr.Folded - 1, Folded: pr.Folded, BestAttempt: pr.BestAttempt})
			}
			opts.Checkpoint(cp)
		}
	}

	// The search span mirrors the local engine's: attempts nest under
	// it, and every remote attempt hangs its rpc spans (and the worker's
	// ingested spans) off its own attempt span.
	searchSpan := opts.Spans.Start("search", -1)
	out, serr := search.Run(ctx, search.Options{
		Attempts:   solutions,
		Workers:    p.cfg.Concurrency,
		Seed:       opts.Seed,
		SeedStride: kway.SeedStride,
		MaxStale:   opts.MaxStale,
		Checkpoint: sCheckpoint,
		Spans:      searchSpan.Scope(),
	}, drv)
	searchSpan.End()

	var budget *search.ErrBudget
	if serr != nil {
		var ae *search.AttemptError
		switch {
		case errors.As(serr, &ae):
			return nil, ae.Err
		case errors.As(serr, &budget):
			// The folded prefix may still hold a feasible incumbent.
		default:
			return nil, serr
		}
	}
	if !out.Found {
		inf := &kway.InfeasibleError{Attempts: out.Stats.Folded, First: firstErr}
		if budget != nil {
			return nil, fmt.Errorf("%v: %w", inf, budget)
		}
		return nil, inf
	}
	// The incumbent carries the per-solution fields (circuit, parts,
	// costs); overlay the coordinator's fold aggregates so the summary
	// matches what the local engine reports for the same search.
	res := *out.Best
	res.Feasible = feasible
	res.Failed = failed
	res.Panicked = out.Stats.Panicked
	res.PanickedSeeds = panickedSeeds
	res.Degraded = out.Stats.Panicked > 0
	switch {
	case budget != nil:
		res.Stopped = kway.StoppedBudget
	case out.Stats.StaleStop:
		res.Stopped = kway.StoppedStale
	default:
		res.Stopped = ""
	}
	if opts.Resume != nil {
		from := opts.Resume.Folded
		res.ResumedFromAttempt = &from
	}
	return &res, nil
}

// rpc outcome classes, in decreasing finality.
const (
	classOK         = iota // solution in hand
	classInfeasible        // deterministic per-attempt failure; folds, never retried
	classFatal             // deterministic job-level failure; aborts the search
	classCtx               // the job's own context ended
	classTransient         // worker-specific failure; retry elsewhere
)

type rpcOutcome struct {
	class      int
	sol        *server.JobResult
	err        error
	retryAfter time.Duration
}

// runAttempt executes one solution attempt against the pool: walk the
// worker ring with backoff between tries, hedge stragglers, fall back
// to the local engine when the pool is exhausted.
func (p *Pool) runAttempt(ctx context.Context, req *server.JobRequest, attempt int, seed int64) (*server.JobResult, error) {
	// The remote form of attempt i: a fresh anonymous Solutions=1
	// search whose seed is the attempt seed. MaxStale is meaningless
	// for one attempt and the worker-side budget is the coordinator's
	// per-attempt timeout.
	r := *req
	r.ID = ""
	r.Solutions = 1
	r.Seed = seed
	r.MaxStale = 0
	r.TimeoutMS = int64(p.cfg.AttemptTimeout / time.Millisecond)
	body, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("coord: marshal attempt %d: %w", attempt, err)
	}

	rid := server.RequestIDFromContext(ctx)
	var last rpcOutcome
	for try := 0; try < p.cfg.Tries; try++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("coord: attempt %d: %w", attempt, cerr)
		}
		out := p.hedgedPost(ctx, attempt, try, body)
		switch out.class {
		case classOK:
			p.met.attempt(OutcomeOK)
			return out.sol, nil
		case classInfeasible:
			p.met.attempt(OutcomeInfeasible)
			return nil, out.err
		case classFatal:
			p.met.attempt(OutcomeFatal)
			return nil, out.err
		case classCtx:
			return nil, fmt.Errorf("coord: attempt %d: %w", attempt, out.err)
		}
		last = out
		if try < p.cfg.Tries-1 {
			p.met.retry()
			wait := p.backoff(attempt, try, out.retryAfter)
			p.log.Warn("attempt retrying", "request_id", rid, "attempt", attempt, "try", try, "wait", wait, "err", out.err)
			if !sleepCtx(ctx, wait) {
				return nil, fmt.Errorf("coord: attempt %d: %w", attempt, ctx.Err())
			}
		}
	}
	if p.local != nil {
		p.met.attempt(OutcomeFallback)
		p.met.fallback()
		p.log.Warn("worker pool exhausted; running attempt locally", "request_id", rid, "attempt", attempt, "err", last.err)
		sol, err := p.local(ctx, &r)
		if err == nil {
			return sol, nil
		}
		var inf *kway.InfeasibleError
		if errors.As(err, &inf) {
			return nil, &attemptError{msg: err.Error()}
		}
		return nil, err
	}
	p.met.attempt(OutcomeExhausted)
	return nil, fmt.Errorf("coord: attempt %d: %d tries across %d workers failed: %w",
		attempt, p.cfg.Tries, len(p.cfg.Workers), last.err)
}

// hedgedPost posts one try, racing a duplicate against the next worker
// when the primary stalls past HedgeAfter. The first non-transient
// response wins; with both legs transient, the last loser is returned
// for the backoff loop.
func (p *Pool) hedgedPost(ctx context.Context, attempt, try int, body []byte) rpcOutcome {
	n := len(p.cfg.Workers)
	primary := p.cfg.Workers[(attempt+try)%n]
	ch := make(chan rpcOutcome, 2)
	go func() { ch <- p.post(ctx, primary, attempt, try, body) }()
	var hedgeC <-chan time.Time
	if p.cfg.HedgeAfter > 0 && n > 1 {
		timer := time.NewTimer(p.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	outstanding := 1
	var last rpcOutcome
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.class != classTransient {
				return out
			}
			last = out
			if outstanding == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			secondary := p.cfg.Workers[(attempt+try+1)%n]
			p.met.hedge()
			p.log.Info("hedging straggler", "request_id", server.RequestIDFromContext(ctx),
				"attempt", attempt, "try", try, "worker", secondary)
			outstanding++
			go func() { ch <- p.post(ctx, secondary, attempt, try, body) }()
		}
	}
}

// maxResponse bounds how much of a worker response is read (a result
// summary is small; this is pure defense).
const maxResponse = 8 << 20

// post issues one request to one worker and classifies the response.
// With spans armed (the attempt's scope rides in ctx) the wire call is
// wrapped in an "rpc" span whose traceparent is forwarded to the
// worker, and the spans the worker returns are ingested into the
// coordinator's collector — one stitched cross-process trace.
func (p *Pool) post(ctx context.Context, worker string, attempt, try int, body []byte) rpcOutcome {
	sc := span.FromContext(ctx)
	rpc := sc.Start("rpc", attempt)
	if sc.Enabled() {
		rpc.Detail(fmt.Sprintf("worker=%s try=%d", worker, try))
	}
	out := p.postOnce(ctx, worker, rpc.Scope(), body)
	rpc.End()
	return out
}

// postOnce is one wire exchange under an rpc span's scope.
func (p *Pool) postOnce(ctx context.Context, worker string, rpcScope span.Scope, body []byte) rpcOutcome {
	rctx, cancel := context.WithTimeout(ctx, p.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, worker+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		return rpcOutcome{class: classFatal, err: fmt.Errorf("coord: worker %s: %w", worker, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := rpcScope.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	if rid := server.RequestIDFromContext(ctx); rid != "" {
		// The worker adopts the coordinator's request ID, so both
		// processes' logs join on one value.
		req.Header.Set("X-Request-Id", rid)
	}
	start := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return rpcOutcome{class: classCtx, err: cerr}
		}
		return rpcOutcome{class: classTransient, err: fmt.Errorf("worker %s: %w", worker, err)}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return rpcOutcome{class: classCtx, err: cerr}
		}
		return rpcOutcome{class: classTransient, err: fmt.Errorf("worker %s: reading response: %w", worker, err)}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var st server.JobStatus
		if err := json.Unmarshal(payload, &st); err != nil || st.Result == nil {
			return rpcOutcome{class: classTransient, err: fmt.Errorf("worker %s: malformed 200 response", worker)}
		}
		if t := rpcScope.Tracer(); t != nil && len(st.Spans) > 0 {
			t.Ingest(st.Spans)
		}
		p.met.latency(time.Since(start).Seconds())
		return rpcOutcome{class: classOK, sol: st.Result}
	case http.StatusUnprocessableEntity:
		// Deterministically infeasible: the attempt seed produced no
		// feasible solution and never will, on any worker.
		return rpcOutcome{class: classInfeasible, err: &attemptError{msg: remoteMessage(worker, resp.StatusCode, payload)}}
	case http.StatusBadRequest:
		// The request itself is broken; every attempt would fail the
		// same way, so surface the worker's typed rejection.
		return rpcOutcome{class: classFatal, err: &server.JobFailure{Kind: server.KindMalformed, Msg: remoteMessage(worker, resp.StatusCode, payload)}}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return rpcOutcome{
			class: classTransient, retryAfter: parseRetryAfter(resp),
			err: errors.New(remoteMessage(worker, resp.StatusCode, payload)),
		}
	default:
		// 5xx, worker-side timeouts, unexpected statuses: worker-specific
		// until proven otherwise — retry on the next one.
		return rpcOutcome{class: classTransient, err: errors.New(remoteMessage(worker, resp.StatusCode, payload))}
	}
}

// remoteMessage renders a worker's error body (both the apiError and
// JobStatus failure schemas use the error/error_kind keys).
func remoteMessage(worker string, code int, payload []byte) string {
	var e struct {
		Error string `json:"error"`
		Kind  string `json:"error_kind"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		if e.Kind != "" {
			return fmt.Sprintf("worker %s: %s (%s)", worker, e.Error, e.Kind)
		}
		return fmt.Sprintf("worker %s: %s", worker, e.Error)
	}
	return fmt.Sprintf("worker %s: HTTP %d", worker, code)
}

func parseRetryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// backoff computes the wait before the next try: exponential in the
// try number, raised to the worker's Retry-After hint, capped at
// BackoffMax, plus a deterministic jitter (up to +50%) derived from
// the attempt index so synchronized retry bursts spread out without a
// randomness source that would vary across runs.
func (p *Pool) backoff(attempt, try int, retryAfter time.Duration) time.Duration {
	d := p.cfg.BackoffBase << uint(try)
	if retryAfter > d {
		d = retryAfter
	}
	if d > p.cfg.BackoffMax {
		d = p.cfg.BackoffMax
	}
	jitter := time.Duration((int64(attempt)*31+int64(try)*17)%16) * d / 32
	return d + jitter
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// betterResult replicates metrics.Solution.Better on the API result
// schema: device cost (with the same epsilon), then hop-weighted
// interconnect when both solutions carry one, then IOB utilization.
// Keeping the comparator identical is what makes the coordinator's
// reduction fold to the local engine's exact incumbent.
func betterResult(a, b *server.JobResult) bool {
	const eps = 1e-9
	if d := a.DeviceCost - b.DeviceCost; d < -eps {
		return true
	} else if d > eps {
		return false
	}
	if a.TopoCost != nil && b.TopoCost != nil && *a.TopoCost != *b.TopoCost {
		return *a.TopoCost < *b.TopoCost
	}
	return a.AvgIOBUtil < b.AvgIOBUtil
}
