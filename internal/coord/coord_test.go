package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/server"
	"fpgapart/internal/telemetry"
)

func circuitText(t *testing.T, cells int, seed int64) string {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: cells, PrimaryIn: 10, PrimaryOut: 6, Seed: seed, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// newEngine builds a real partitioning server (worker-side engine) and
// arranges its drain.
func newEngine(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s := server.New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func newWorkerTS(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(telemetry.NewRegistry())
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// localResult runs the full request on a fresh local engine — the
// byte-identity reference every distribution test compares against.
func localResult(t *testing.T, req *server.JobRequest) *server.JobResult {
	t.Helper()
	eng := newEngine(t, server.Config{})
	res, err := eng.LocalAttempt()(context.Background(), req)
	if err != nil {
		t.Fatalf("local reference run: %v", err)
	}
	return res
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDistributeMatchesLocal(t *testing.T) {
	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 5, Seed: 7}
	want := localResult(t, req)

	w1 := newWorkerTS(t, newEngine(t, server.Config{}))
	w2 := newWorkerTS(t, newEngine(t, server.Config{}))
	pool := newPool(t, Config{Workers: []string{w1.URL, w2.URL}})

	got, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 5, Seed: 7})
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Fatalf("distributed result diverged from local run:\n got %s\nwant %s", g, w)
	}
	if n := pool.met.attempts.With(OutcomeOK).Value(); n != 5 {
		t.Fatalf("ok attempts = %d, want 5", n)
	}
}

func TestWorkerDeathResharded(t *testing.T) {
	// Worker B serves two requests and then dies mid-job (connections
	// torn down without a response). Its remaining attempts must
	// re-shard onto worker A and the result must stay byte-identical
	// to the local fixed-seed run.
	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 6, Seed: 3}
	want := localResult(t, req)

	alive := newWorkerTS(t, newEngine(t, server.Config{}))
	engB := newEngine(t, server.Config{})
	var served atomic.Int64
	dying := newWorkerTS(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 2 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		engB.ServeHTTP(w, r)
	}))
	pool := newPool(t, Config{
		Workers:     []string{alive.URL, dying.URL},
		Tries:       3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})

	got, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 6, Seed: 3})
	if err != nil {
		t.Fatalf("distribute with dying worker: %v", err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Fatalf("result diverged after worker death:\n got %s\nwant %s", g, w)
	}
	if pool.met.retries.Value() == 0 {
		t.Fatal("no retries recorded despite a dying worker")
	}
}

func TestRetryAfterHonored(t *testing.T) {
	// The worker sheds the first request with 429 + Retry-After; the
	// retry must wait at least the (BackoffMax-capped) hint and then
	// succeed on the same worker.
	eng := newEngine(t, server.Config{})
	var n atomic.Int64
	shed := newWorkerTS(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full, retry later","error_kind":"overload"}`)
			return
		}
		eng.ServeHTTP(w, r)
	}))
	pool := newPool(t, Config{
		Workers:     []string{shed.URL},
		Tries:       2,
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})

	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 1, Seed: 1}
	start := time.Now()
	_, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 1, Seed: 1})
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("retry after %s, want >= the capped Retry-After of 50ms", elapsed)
	}
	if pool.met.retries.Value() != 1 {
		t.Fatalf("retries = %d, want 1", pool.met.retries.Value())
	}
}

func TestInfeasibleIsFinal(t *testing.T) {
	// 422 is a deterministic outcome: the same seed fails the same way
	// on every worker, so it folds as a failed attempt with no retry
	// and no local fallback.
	var n atomic.Int64
	infeasible := newWorkerTS(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"kway: no feasible solution in 1 attempts","error_kind":"infeasible"}`)
	}))
	pool := newPool(t, Config{Workers: []string{infeasible.URL}, Tries: 3})
	pool.SetLocal(func(ctx context.Context, req *server.JobRequest) (*server.JobResult, error) {
		t.Error("local fallback invoked for a deterministic infeasible outcome")
		return nil, errors.New("unreachable")
	})

	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 2, Seed: 1}
	_, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 2, Seed: 1})
	var inf *kway.InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("error = %v, want *kway.InfeasibleError", err)
	}
	if inf.Attempts != 2 {
		t.Fatalf("infeasible after %d attempts, want 2", inf.Attempts)
	}
	if got := n.Load(); got != 2 {
		t.Fatalf("worker saw %d requests, want exactly 2 (no retries)", got)
	}
}

func TestMalformedAbortsJob(t *testing.T) {
	malformed := newWorkerTS(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"line 2: bad cell","error_kind":"malformed"}`)
	}))
	pool := newPool(t, Config{Workers: []string{malformed.URL}, Tries: 3})

	req := &server.JobRequest{Circuit: "nonsense", Solutions: 2, Seed: 1}
	_, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 2, Seed: 1})
	var jf *server.JobFailure
	if !errors.As(err, &jf) || jf.Kind != server.KindMalformed {
		t.Fatalf("error = %v, want *server.JobFailure with kind %q", err, server.KindMalformed)
	}
}

func TestLocalFallbackByteIdentical(t *testing.T) {
	// Every worker is dead: the pool degrades to running attempts on
	// the local engine, and because the attempt→seed mapping is shared,
	// the result still matches the pure-local run exactly.
	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 5}
	want := localResult(t, req)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	pool := newPool(t, Config{
		Workers:     []string{dead.URL},
		Tries:       2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	pool.SetLocal(newEngine(t, server.Config{}).LocalAttempt())

	got, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 3, Seed: 5})
	if err != nil {
		t.Fatalf("distribute with dead pool: %v", err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Fatalf("fallback result diverged:\n got %s\nwant %s", g, w)
	}
	if pool.met.fallbacks.Value() != 3 {
		t.Fatalf("fallbacks = %d, want 3", pool.met.fallbacks.Value())
	}
}

func TestExhaustionWithoutFallbackFails(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	pool := newPool(t, Config{
		Workers:     []string{dead.URL},
		Tries:       2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 2, Seed: 1}
	_, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 2, Seed: 1})
	if err == nil {
		t.Fatal("want an error when the pool is exhausted and no local fallback is installed")
	}
	if pool.met.attempts.With(OutcomeExhausted).Value() == 0 {
		t.Fatal("no exhausted attempts recorded")
	}
}

func TestHedgedRequestWins(t *testing.T) {
	// Worker A stalls until the client gives up; the hedge fires after
	// HedgeAfter and worker B's response wins the race.
	eng := newEngine(t, server.Config{})
	straggler := newWorkerTS(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server re-arms client-disconnect
		// detection, then stall until the client gives up (with a timer
		// fallback so a missed cancellation can't wedge ts.Close).
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(3 * time.Second):
		}
	}))
	fast := newWorkerTS(t, eng)
	pool := newPool(t, Config{
		Workers:        []string{straggler.URL, fast.URL},
		AttemptTimeout: 2 * time.Second,
		HedgeAfter:     20 * time.Millisecond,
	})

	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 1, Seed: 1}
	got, err := pool.Distribute(context.Background(), req, core.Options{Solutions: 1, Seed: 1})
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if got.DeviceCost <= 0 {
		t.Fatalf("bad hedged result: %+v", got)
	}
	if pool.met.hedges.Value() == 0 {
		t.Fatal("no hedges recorded despite a stalled primary")
	}
}

func TestResumeByteIdentical(t *testing.T) {
	// Interrupt-and-resume through the coordinator: a run resumed from
	// a mid-search checkpoint must report the byte-identical result of
	// the uninterrupted run (modulo the resumed_from_attempt marker).
	req := &server.JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 6, Seed: 9}
	w1 := newWorkerTS(t, newEngine(t, server.Config{}))
	w2 := newWorkerTS(t, newEngine(t, server.Config{}))
	pool := newPool(t, Config{Workers: []string{w1.URL, w2.URL}})

	var cps []kway.SearchCheckpoint
	full, err := pool.Distribute(context.Background(), req, core.Options{
		Solutions: 6, Seed: 9,
		Checkpoint: func(cp kway.SearchCheckpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if len(cps) != 6 {
		t.Fatalf("checkpoints = %d, want 6", len(cps))
	}

	cp := cps[2] // folded=3, mid-search
	resumed, err := pool.Distribute(context.Background(), req, core.Options{
		Solutions: 6, Seed: 9, Resume: &cp,
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.ResumedFromAttempt == nil || *resumed.ResumedFromAttempt != 3 {
		t.Fatalf("resumed_from_attempt = %v, want 3", resumed.ResumedFromAttempt)
	}
	resumed.ResumedFromAttempt = nil
	if g, w := mustJSON(t, resumed), mustJSON(t, full); g != w {
		t.Fatalf("resumed result diverged:\n got %s\nwant %s", g, w)
	}
}

func TestNewValidatesWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for an empty worker list")
	}
	if _, err := New(Config{Workers: []string{"not-a-url"}}); err == nil {
		t.Fatal("want error for a non-http worker URL")
	}
	p, err := New(Config{Workers: []string{" http://a:1/ "}})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Workers[0] != "http://a:1" {
		t.Fatalf("worker not normalized: %q", p.cfg.Workers[0])
	}
}
