// Package maxflow implements Dinic's maximum-flow algorithm on small
// integer-capacity networks. It is the substrate for the optimal
// replication refinement (Hwang–El Gamal, ICCAD'92 — reference [4] of
// the paper), which reduces min-cut replication to s-t minimum cut.
package maxflow

import "fmt"

// Inf is an effectively unbounded capacity.
const Inf = int64(1) << 60

type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in adj[to]
}

// Graph is a flow network over nodes 0..n-1.
type Graph struct {
	adj   [][]edge
	level []int
	iter  []int
}

// New creates a network with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// N returns the node count.
func (g *Graph) N() int { return len(g.adj) }

// AddNode appends a node and returns its id.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds a directed edge with the given capacity.
func (g *Graph) AddEdge(from, to int, cap int64) {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("maxflow: edge %d->%d outside graph of %d nodes", from, to, len(g.adj)))
	}
	if cap < 0 {
		panic("maxflow: negative capacity")
	}
	g.adj[from] = append(g.adj[from], edge{to: to, cap: cap, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, rev: len(g.adj[from]) - 1})
}

func (g *Graph) bfs(s, t int) bool {
	g.level = make([]int, len(g.adj))
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] < len(g.adj[v]); g.iter[v]++ {
		e := &g.adj[v][g.iter[v]]
		if e.cap > 0 && g.level[v] < g.level[e.to] {
			d := g.dfs(e.to, t, min64(f, e.cap))
			if d > 0 {
				e.cap -= d
				g.adj[e.to][e.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// MaxFlow computes the maximum s-t flow, mutating residual capacities.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var flow int64
	for g.bfs(s, t) {
		g.iter = make([]int, len(g.adj))
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutSide returns, after MaxFlow, the set of nodes reachable from s
// in the residual network (the source side of a minimum cut).
func (g *Graph) MinCutSide(s int) []bool {
	side := make([]bool, len(g.adj))
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return side
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
