package maxflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 5)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("flow = %d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	if f := g.MaxFlow(0, 2); f != 0 {
		t.Fatalf("flow = %d, want 0", f)
	}
}

func TestSelfSourceSink(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatalf("flow = %d", f)
	}
}

func TestMinCutSide(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1) // bottleneck
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 1 {
		t.Fatalf("flow = %d", f)
	}
	side := g.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("cut side = %v, want {0,1}", side)
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(0, a, 2)
	g.AddEdge(a, b, 1)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if f := g.MaxFlow(0, b); f != 1 {
		t.Fatalf("flow = %d", f)
	}
}

func TestInfCapacity(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, Inf)
	g.AddEdge(1, 2, 7)
	if f := g.MaxFlow(0, 2); f != 7 {
		t.Fatalf("flow = %d", f)
	}
}

// Property: max-flow equals the capacity of the cut returned by
// MinCutSide on random networks (max-flow/min-cut theorem).
func TestPropertyFlowEqualsCutCapacity(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(10)
		type e struct {
			from, to int
			cap      int64
		}
		var edges []e
		g := New(n)
		for i := 0; i < 3*n; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			c := int64(1 + r.Intn(9))
			edges = append(edges, e{a, b, c})
			g.AddEdge(a, b, c)
		}
		s, tt := 0, n-1
		flow := g.MaxFlow(s, tt)
		side := g.MinCutSide(s)
		if side[tt] {
			if flow != 0 {
				t.Fatalf("seed %d: sink reachable but flow %d", seed, flow)
			}
			continue
		}
		var cutCap int64
		for _, ed := range edges {
			if side[ed.from] && !side[ed.to] {
				cutCap += ed.cap
			}
		}
		if cutCap != flow {
			t.Fatalf("seed %d: flow %d != cut capacity %d", seed, flow, cutCap)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
