// Package bitset provides fixed-width dense bit vectors used to
// represent the adjacency, cutset-adjacency and critical-net vectors of
// the functional-replication gain model (Kužnar et al., DAC'94,
// Sections II–III). The three operations the paper performs on these
// vectors — complementation, logical AND and the norm |·| (population
// count) — are provided directly.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty
// vector of length 0; use New to create one of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits.
func New(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector from a slice of booleans; bit i is set when
// b[i] is true.
func FromBools(b []bool) Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	return v
}

// FromBits builds a vector from 0/1 integers, convenient for writing
// the paper's column vectors such as A_X = [1 1 0]^T as FromBits(1,1,0).
func FromBits(bits ...int) Vector {
	v := New(len(bits))
	for i, x := range bits {
		switch x {
		case 0:
		case 1:
			v.Set(i)
		default:
			panic(fmt.Sprintf("bitset: FromBits element %d is %d, want 0 or 1", i, x))
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v Vector) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i.
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetBool assigns bit i.
func (v Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, v.n))
	}
}

func (v Vector) sameLen(w Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", v.n, w.n))
	}
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Not returns the bitwise complement of v (the paper's Ā operation).
// Bits beyond Len are kept zero.
func (v Vector) Not() Vector {
	w := v.Clone()
	for i := range w.words {
		w.words[i] = ^w.words[i]
	}
	w.trim()
	return w
}

// And returns the bitwise AND of v and w (the paper's product vector).
func (v Vector) And(w Vector) Vector {
	v.sameLen(w)
	out := v.Clone()
	for i := range out.words {
		out.words[i] &= w.words[i]
	}
	return out
}

// AndNot returns v AND (NOT w), a common compound in the gain formulas.
func (v Vector) AndNot(w Vector) Vector {
	v.sameLen(w)
	out := v.Clone()
	for i := range out.words {
		out.words[i] &^= w.words[i]
	}
	return out
}

// Or returns the bitwise OR of v and w.
func (v Vector) Or(w Vector) Vector {
	v.sameLen(w)
	out := v.Clone()
	for i := range out.words {
		out.words[i] |= w.words[i]
	}
	return out
}

// Norm returns |v|, the number of set bits (the paper's norm).
func (v Vector) Norm() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and w have identical length and bits.
func (v Vector) Equal(w Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// trim clears any bits at positions >= n left over from complementation.
func (v *Vector) trim() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}

// String renders the vector as the paper writes them, e.g. "[1 1 0]^T".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < v.n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteString("]^T")
	return sb.String()
}
