package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.Any() {
		t.Fatal("Any() true for zero vector")
	}
	if v.Norm() != 0 {
		t.Fatalf("Norm = %d, want 0", v.Norm())
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestSetBool(t *testing.T) {
	v := New(4)
	v.SetBool(2, true)
	v.SetBool(3, false)
	if !v.Get(2) || v.Get(3) {
		t.Fatalf("SetBool wrong: %v", v)
	}
}

func TestFromBits(t *testing.T) {
	v := FromBits(1, 1, 0)
	if v.Len() != 3 || !v.Get(0) || !v.Get(1) || v.Get(2) {
		t.Fatalf("FromBits(1,1,0) = %v", v)
	}
	if v.String() != "[1 1 0]^T" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestFromBitsPanicsOnBadDigit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for element 2")
		}
	}()
	FromBits(0, 2)
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if !v.Equal(FromBits(1, 0, 1)) {
		t.Fatalf("FromBools mismatch: %v", v)
	}
}

// TestPaperFigure2 reproduces the Section II worked example: the cell
// with A_X1 = [1 1 1 1 0]^T and A_X2 = [0 0 0 1 1]^T has a replication
// potential of 4, computed per Eq. (4) as
// |Ā_X2 ∧ A_X1| + |Ā_X1 ∧ A_X2|.
func TestPaperFigure2(t *testing.T) {
	aX1 := FromBits(1, 1, 1, 1, 0)
	aX2 := FromBits(0, 0, 0, 1, 1)
	psi := aX1.And(aX2.Not()).Norm() + aX2.And(aX1.Not()).Norm()
	if psi != 4 {
		t.Fatalf("replication potential = %d, want 4", psi)
	}
}

// TestPaperSectionIIOps checks the three binary operations exactly as
// the paper illustrates them.
func TestPaperSectionIIOps(t *testing.T) {
	aX := FromBits(1, 1, 0)
	if got := aX.Not(); !got.Equal(FromBits(0, 0, 1)) {
		t.Fatalf("complement = %v", got)
	}
	aX2 := FromBits(0, 1, 1)
	if got := aX.And(aX2); !got.Equal(FromBits(0, 1, 0)) {
		t.Fatalf("AND = %v", got)
	}
	if got := FromBits(0, 1, 1).Norm(); got != 2 {
		t.Fatalf("norm = %d, want 2", got)
	}
}

func TestNotTrimsTail(t *testing.T) {
	v := New(5)
	w := v.Not()
	if w.Norm() != 5 {
		t.Fatalf("Norm of ~0 over 5 bits = %d, want 5", w.Norm())
	}
	// Double complement is identity.
	if !w.Not().Equal(v) {
		t.Fatal("double complement not identity")
	}
}

func TestAndNotOr(t *testing.T) {
	a := FromBits(1, 1, 0, 0)
	b := FromBits(1, 0, 1, 0)
	if got := a.AndNot(b); !got.Equal(FromBits(0, 1, 0, 0)) {
		t.Fatalf("AndNot = %v", got)
	}
	if got := a.Or(b); !got.Equal(FromBits(1, 1, 1, 0)) {
		t.Fatalf("Or = %v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(3).And(New(4))
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	New(3).Get(3)
}

func TestCloneIndependent(t *testing.T) {
	v := FromBits(1, 0, 1)
	w := v.Clone()
	w.Clear(0)
	if !v.Get(0) {
		t.Fatal("Clone shares storage with original")
	}
}

func randomVector(r *rand.Rand, n int) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// Property: De Morgan — ~(a AND b) == ~a OR ~b.
func TestPropertyDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r, n), randomVector(r, n)
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: |a| + |~a| == Len.
func TestPropertyNormComplement(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, n)
		return a.Norm()+a.Not().Norm() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inclusion–exclusion — |a| + |b| == |a AND b| + |a OR b|.
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r, n), randomVector(r, n)
		return a.Norm()+b.Norm() == a.And(b).Norm()+a.Or(b).Norm()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AndNot(a,b) == And(a, Not(b)).
func TestPropertyAndNot(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r, n), randomVector(r, n)
		return a.AndNot(b).Equal(a.And(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
