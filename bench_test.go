// Package fpgapart's benchmarks regenerate every table and figure of
// the paper's evaluation at reduced scale (the shape-preserving 1/8
// circuits), plus engine micro-benchmarks and ablations. The full-size
// tables come from `go run ./cmd/benchtables`; each benchmark here
// prints the same rows via the shared drivers in internal/expt.
package fpgapart

import (
	"fmt"
	"testing"

	"fpgapart/internal/anneal"
	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/expt"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
	"fpgapart/internal/replication"
)

// benchCfg is the reduced-scale configuration all table benchmarks
// share: 1/8-size circuits, few runs, deterministic seed.
func benchCfg() expt.Config {
	return expt.Config{Scale: 8, Runs: 3, Solutions: 3, Seed: 1}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := expt.TableI(library.XC3000()).String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.TableII(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := expt.Figure3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the min-cut experiment (FM vs FM with
// functional replication) and reports the average cut reduction as a
// custom metric.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := expt.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		red := 0.0
		for _, r := range rows {
			red += r.AvgRed / float64(len(rows))
		}
		b.ReportMetric(red, "avg-cut-red-%")
	}
}

func benchKwayRows(b *testing.B) []expt.KwayRow {
	b.Helper()
	rows, err := expt.RunKway(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchKwayRows(b)
		if s := expt.TableIV(benchCfg(), rows).String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchKwayRows(b)
		if s := expt.TableV(rows).String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchKwayRows(b)
		// Report the average T=1 cost reduction against the baseline.
		red, n := 0.0, 0
		for _, r := range rows {
			if r.Baseline.Err == nil && r.ByT[1].Err == nil && r.Baseline.Cost > 0 {
				red += 100 * (r.Baseline.Cost - r.ByT[1].Cost) / r.Baseline.Cost
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(red/float64(n), "avg-cost-red-%")
		}
		if s := expt.TableVI(rows).String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchKwayRows(b)
		iob, n := 0.0, 0
		for _, r := range rows {
			if c := r.ByT[1]; c.Err == nil {
				iob += c.IOBUtil
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(iob/float64(n), "avg-iob-util-%")
		}
		if s := expt.TableVII(rows).String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- engine micro-benchmarks and ablations ---------------------------

func benchGraph(b *testing.B, name string, scale int) *hypergraph.Graph {
	b.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	g, err := c.Small(scale).Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFMPass measures raw plain-FM bipartitioning throughput.
func BenchmarkFMPass(b *testing.B) {
	g := benchGraph(b, "s13207", 2)
	minA, maxA := fm.Balance(g.TotalArea(), 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := replication.NewState(g, fm.RandomAssign(g, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Moves), "moves/op")
	}
}

// BenchmarkReplicationGain measures the per-move gain evaluation the
// engine's inner loop depends on.
func BenchmarkReplicationGain(b *testing.B) {
	g := benchGraph(b, "s9234", 2)
	st, err := replication.NewState(g, fm.RandomAssign(g, 1))
	if err != nil {
		b.Fatal(err)
	}
	moves := make([]replication.Move, 0, g.NumCells())
	for ci := 0; ci < g.NumCells(); ci++ {
		c := hypergraph.CellID(ci)
		if splits := st.Splits(c); len(splits) > 0 {
			moves = append(moves, replication.Move{Cell: c, Kind: replication.Replicate, Carry: splits[0]})
		} else {
			moves = append(moves, replication.Move{Cell: c, Kind: replication.SingleMove})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Gain(moves[i%len(moves)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInitialPartition compares cluster-grown against
// random initial assignments: the design choice behind the k-way
// carve (DESIGN.md §5).
func BenchmarkAblationInitialPartition(b *testing.B) {
	g := benchGraph(b, "s15850", 4)
	minA, maxA := fm.Balance(g.TotalArea(), 0.05)
	run := func(b *testing.B, assignFor func(i int) []replication.Block) {
		cuts := 0
		for i := 0; i < b.N; i++ {
			st, err := replication.NewState(g, assignFor(i))
			if err != nil {
				b.Fatal(err)
			}
			res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			cuts += res.Cut
		}
		b.ReportMetric(float64(cuts)/float64(b.N), "final-cut")
	}
	b.Run("random", func(b *testing.B) {
		run(b, func(i int) []replication.Block { return fm.RandomAssign(g, int64(i)) })
	})
	b.Run("cluster", func(b *testing.B) {
		run(b, func(i int) []replication.Block { return fm.ClusterAssign(g, int64(i), g.TotalArea()/2) })
	})
	b.Run("multilevel", func(b *testing.B) {
		run(b, func(i int) []replication.Block {
			a, err := fm.MultilevelAssign(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			return a
		})
	})
}

// BenchmarkAblationThreshold sweeps the replication threshold on one
// circuit, reporting the final cut per setting (Table IV's knob).
func BenchmarkAblationThreshold(b *testing.B) {
	g := benchGraph(b, "s9234", 2)
	minA, maxA := fm.Balance(g.TotalArea(), 0.05)
	maxA = [2]int{maxA[0] * 11 / 10, maxA[1] * 11 / 10}
	for _, T := range []int{fm.NoReplication, 0, 1, 3} {
		name := fmt.Sprintf("T=%d", T)
		if T == fm.NoReplication {
			name = "T=off"
		}
		b.Run(name, func(b *testing.B) {
			cuts := 0
			for i := 0; i < b.N; i++ {
				st, err := replication.NewState(g, fm.RandomAssign(g, int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: T, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				cuts += res.Cut
			}
			b.ReportMetric(float64(cuts)/float64(b.N), "final-cut")
		})
	}
}

// BenchmarkKwayPartition measures one full cost-driven k-way search.
func BenchmarkKwayPartition(b *testing.B) {
	g := benchGraph(b, "s13207", 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Partition(g, core.Options{Solutions: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.DeviceCost(), "cost")
	}
}

// BenchmarkAblationFlowRefine compares FM+functional-replication
// against the same run followed by the exact max-flow replication pull
// (the paper's suggested combination with [4]).
func BenchmarkAblationFlowRefine(b *testing.B) {
	g := benchGraph(b, "s15850", 2)
	minA, maxA := fm.Balance(g.TotalArea(), 0.05)
	maxA = [2]int{maxA[0] * 11 / 10, maxA[1] * 11 / 10}
	for _, flow := range []bool{false, true} {
		name := "fm+fr"
		if flow {
			name = "fm+fr+flow"
		}
		b.Run(name, func(b *testing.B) {
			cuts := 0
			for i := 0; i < b.N; i++ {
				st, err := replication.NewState(g, fm.RandomAssign(g, int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := fm.Run(st, fm.Config{
					MinArea: minA, MaxArea: maxA, Threshold: 0,
					FlowRefine: flow, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				cuts += res.Cut
			}
			b.ReportMetric(float64(cuts)/float64(b.N), "final-cut")
		})
	}
}

// BenchmarkAblationPairRefine measures the pairwise k-way refinement
// sweep's effect on Eq. 2 (average IOB utilization).
func BenchmarkAblationPairRefine(b *testing.B) {
	g := benchGraph(b, "s38584", 3)
	for _, refine := range []bool{false, true} {
		name := "search-only"
		if refine {
			name = "search+refine"
		}
		b.Run(name, func(b *testing.B) {
			util := 0.0
			for i := 0; i < b.N; i++ {
				res, err := core.Partition(g, core.Options{Solutions: 3, Seed: int64(i), Refine: refine})
				if err != nil {
					b.Fatal(err)
				}
				util += 100 * res.Summary.AvgIOBUtil()
			}
			b.ReportMetric(util/float64(b.N), "avg-iob-util-%")
		})
	}
}

// BenchmarkKwayVerifyOverhead measures the cost of in-loop
// verification (kway.Options.Verify / kpart -verify): every accepted
// carve is re-checked with replication.State invariants plus
// verify.Split, and every assembled solution with verify.Partition.
// The checks are linear in pins, so the overhead stays small against
// the FM search itself — expected below ~10% at this reduced scale.
func BenchmarkKwayVerifyOverhead(b *testing.B) {
	g := benchGraph(b, "s13207", 2)
	for _, on := range []bool{false, true} {
		name := "verify-off"
		if on {
			name = "verify-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Partition(g, core.Options{Solutions: 3, Seed: int64(i), Verify: on}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFMvsAnnealing compares the paper's FM engine
// against a generic simulated-annealing baseline over the same move
// universe (equal configuration, one start each).
func BenchmarkAblationFMvsAnnealing(b *testing.B) {
	g := benchGraph(b, "s13207", 4)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	b.Run("fm", func(b *testing.B) {
		cuts := 0
		for i := 0; i < b.N; i++ {
			st, err := replication.NewState(g, fm.RandomAssign(g, int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			cuts += res.Cut
		}
		b.ReportMetric(float64(cuts)/float64(b.N), "final-cut")
	})
	b.Run("annealing", func(b *testing.B) {
		cuts := 0
		for i := 0; i < b.N; i++ {
			st, err := replication.NewState(g, fm.RandomAssign(g, int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			res, err := anneal.Run(st, anneal.Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			cuts += res.Cut
		}
		b.ReportMetric(float64(cuts)/float64(b.N), "final-cut")
	})
}
