// Command kpart partitions a circuit into a heterogeneous FPGA
// library, minimizing total device cost (Eq. 1) and interconnect
// (Eq. 2) with optional functional replication.
//
// Input is either a mapped circuit (.clb, see internal/hypergraph) or
// a gate-level netlist (.gnl, see internal/netlist), which is
// technology-mapped first.
//
// Usage:
//
//	kpart [-t 1] [-solutions 50] [-seed 1] [-timeout 30s] [-gate] [-v]
//	      [-store dir] [-resume dir] [-checkpoint-every 1] circuit.clb
//
// With -store, the search reduction is persisted to a crash-safe
// append-only store after every -checkpoint-every folded attempts;
// -resume continues an interrupted run from the newest checkpoint
// (the trace stream reports the resume point as resumed_from_attempt).
//
// Exit codes: 0 = success; 1 = error (I/O, configuration,
// verification); 2 = infeasible instance (the full attempt budget ran
// without a feasible solution); 3 = -timeout expired before any
// feasible solution; 4 = malformed input (parse error or resource
// limit, with line/column context on stderr); 5 = the -trace-out
// span timeline could not be written.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/jobstore"
	"fpgapart/internal/kway"
	"fpgapart/internal/netlist"
	"fpgapart/internal/prof"
	"fpgapart/internal/report"
	"fpgapart/internal/search"
	"fpgapart/internal/span"
	"fpgapart/internal/techmap"
	"fpgapart/internal/telemetry"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
	"fpgapart/internal/verify"
)

func main() {
	threshold := flag.Int("t", 1, "replication potential threshold T (-1 disables replication)")
	solutions := flag.Int("solutions", 50, "feasible k-way solutions to generate")
	seed := flag.Int64("seed", 1, "random seed")
	gate := flag.Bool("gate", false, "input is a gate-level netlist (.gnl); map it first")
	verbose := flag.Bool("v", false, "print per-part details")
	check := flag.Bool("verify", false, "verify every accepted carve and solution in-loop, plus the final result")
	outDir := flag.String("o", "", "write each part as <dir>/<circuit>.pN.clb")
	jsonOut := flag.Bool("json", false, "print the solution summary as JSON")
	timeout := flag.Duration("timeout", 0, "wall-clock search budget (0 = unlimited); on expiry the best solution so far is kept")
	maxStale := flag.Int("max-stale", 0, "stop after this many consecutive non-improving solutions (0 = run all)")
	refineWorkers := flag.Int("refine-workers", 0, "FM refinement workers: >=2 runs the deterministic parallel sub-round engine, 0 or 1 the classic serial engine")
	multilevel := flag.Bool("multilevel", false, "seed large carve subproblems with the multilevel V-cycle (coarsen, partition, uncoarsen+refine)")
	progress := flag.Bool("progress", false, "print per-solution progress and search statistics to stderr")
	statsJSON := flag.String("stats-json", "", "stream structured engine events (FM passes, carves, solutions) as JSONL to this file")
	board := flag.String("board", "", "multi-FPGA board topology: a spec (crossbar:N[:CAP], linear:N[:CAP], mesh:RxC[:CAP]) or a board-description file; switches the search to the hop-weighted interconnect objective")
	metricsOut := flag.String("metrics-out", "", "write a final metrics snapshot (Prometheus text format 0.0.4) to this file")
	traceOut := flag.String("trace-out", "", "record the run as a span tree and write it as Chrome trace_event JSON (load in Perfetto or chrome://tracing) to this file")
	storeDir := flag.String("store", "", "durable checkpoint store directory: the search reduction is persisted every -checkpoint-every folded attempts so an interrupted run can continue with -resume")
	resumeDir := flag.String("resume", "", "resume an interrupted run from the newest checkpoint in this store directory (implies -store DIR; flags and circuit must match the original run)")
	ckptEvery := flag.Int("checkpoint-every", 1, "durable checkpoint cadence in folded attempts (with -store)")
	profFlags := prof.Register(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kpart [flags] <circuit.clb|circuit.gnl>")
		flag.PrintDefaults()
		fmt.Fprint(os.Stderr, `
exit codes:
  0  success
  1  error (I/O, configuration, verification failure)
  2  infeasible instance: the attempt budget ran without a feasible solution
  3  -timeout expired before any feasible solution was found
  4  malformed input: parse error or resource limit (line/column on stderr)
  5  -trace-out span timeline could not be written
`)
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart:", err)
		os.Exit(1)
	}
	err = run(runConfig{
		path:          flag.Arg(0),
		threshold:     *threshold,
		solutions:     *solutions,
		seed:          *seed,
		gate:          *gate || strings.HasSuffix(flag.Arg(0), ".gnl"),
		verbose:       *verbose,
		check:         *check,
		outDir:        *outDir,
		jsonOut:       *jsonOut,
		timeout:       *timeout,
		maxStale:      *maxStale,
		multilevel:    *multilevel,
		refineWorkers: *refineWorkers,
		progress:      *progress,
		statsJSON:     *statsJSON,
		metricsOut:    *metricsOut,
		traceOut:      *traceOut,
		board:         *board,
		storeDir:      *storeDir,
		resumeDir:     *resumeDir,
		ckptEvery:     *ckptEvery,
	})
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps failure modes to the documented exit codes. The budget
// check comes first: a timeout with no feasible solution wraps both
// error types, and "ran out of time" is the actionable diagnosis.
func exitCode(err error) int {
	var texp *traceExportError
	if errors.As(err, &texp) {
		return 5
	}
	var budget *search.ErrBudget
	if errors.As(err, &budget) {
		return 3
	}
	var inf *kway.InfeasibleError
	if errors.As(err, &inf) {
		return 2
	}
	var nperr *netlist.ParseError
	var hperr *hypergraph.ParseError
	if errors.As(err, &nperr) || errors.As(err, &hperr) {
		return 4
	}
	return 1
}

type runConfig struct {
	path          string
	threshold     int
	solutions     int
	seed          int64
	gate          bool
	verbose       bool
	check         bool
	outDir        string
	jsonOut       bool
	timeout       time.Duration
	maxStale      int
	multilevel    bool
	refineWorkers int
	progress      bool
	statsJSON     string
	metricsOut    string
	traceOut      string
	board         string
	storeDir      string
	resumeDir     string
	ckptEvery     int
}

// cliJobID is the fixed job identity a CLI run records in its store;
// one store directory holds one resumable run.
const cliJobID = "cli"

// openRunStore opens (or creates) the durable checkpoint store and,
// for -resume, loads the newest persisted checkpoint of the prior run.
func openRunStore(cfg runConfig) (*jobstore.Store, *kway.SearchCheckpoint, error) {
	dir := cfg.storeDir
	if dir == "" {
		dir = cfg.resumeDir
	}
	store, jobs, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	var resume *kway.SearchCheckpoint
	if cfg.resumeDir != "" {
		for _, j := range jobs {
			if j.ID != cliJobID || len(j.Checkpoint) == 0 {
				continue
			}
			cp := new(kway.SearchCheckpoint)
			if err := json.Unmarshal(j.Checkpoint, cp); err != nil {
				store.Close()
				return nil, nil, fmt.Errorf("resume %s: corrupt checkpoint: %w", cfg.resumeDir, err)
			}
			resume = cp
		}
		if resume == nil {
			fmt.Fprintf(os.Stderr, "kpart: no checkpoint in %s; starting fresh\n", cfg.resumeDir)
		}
	}
	if store.Job(cliJobID) == nil {
		if err := store.AppendSubmit(cliJobID, map[string]any{
			"circuit": cfg.path, "solutions": cfg.solutions, "seed": cfg.seed,
		}); err != nil {
			store.Close()
			return nil, nil, err
		}
	}
	return store, resume, nil
}

// progressSink prints one stderr line per folded solution attempt.
// Solution events are emitted by the single-threaded index-ordered
// reduction, so the lines appear in deterministic order.
type progressSink struct{ total int }

func (p progressSink) Event(e trace.Event) {
	if e.Kind != trace.KindSolution {
		return
	}
	if !e.Feasible {
		fmt.Fprintf(os.Stderr, "kpart: attempt %d/%d: infeasible\n", e.Attempt+1, p.total)
		return
	}
	marker := ""
	if e.Improved {
		marker = "  (new best)"
	}
	fmt.Fprintf(os.Stderr, "kpart: attempt %d/%d: k=%d cost=%.0f%s\n", e.Attempt+1, p.total, e.Parts, e.Cost, marker)
}

func run(cfg runConfig) error {
	// Span tracing: one "job" root span for the run, trace ID derived
	// from the CLI store identity (cliJobID, seed, solutions) so a
	// -resume run records into the same logical trace as the run it
	// continues. Disarmed (the zero Running), every Start below is a
	// predicted no-op branch.
	var tracer *span.Tracer
	var jobRun span.Running
	if cfg.traceOut != "" {
		tracer = span.NewTracer(span.Options{Process: "kpart"})
		tid := span.DeriveTraceID(cliJobID, cfg.seed, cfg.solutions)
		jobRun = tracer.Root(tid, 0).Start("job", -1)
	}

	parseStart := time.Now()
	parseSpan := jobRun.Scope().Start("parse", -1)
	f, err := os.Open(cfg.path)
	if err != nil {
		return err
	}
	defer f.Close()

	var g *hypergraph.Graph
	if cfg.gate {
		n, err := netlist.Read(f)
		if err != nil {
			return err
		}
		m, err := techmap.Map(n, techmap.Options{Seed: cfg.seed})
		if err != nil {
			return err
		}
		s := n.Stats()
		fmt.Printf("mapped %s: %d gates (%d FF) -> %d CLBs, %d IOBs\n",
			n.Name, s.Gates, s.DFFs, m.Graph.NumCells(), m.Graph.NumTerminals())
		g = m.Graph
	} else {
		g, err = hypergraph.Read(f)
		if err != nil {
			return err
		}
	}
	parseSpan.Detail(fmt.Sprintf("circuit=%s cells=%d", g.Name, g.NumCells()))
	parseSpan.End()
	jobRun.Detail(fmt.Sprintf("circuit=%s seed=%d solutions=%d", g.Name, cfg.seed, cfg.solutions))

	var sinks []trace.Sink
	var agg *trace.Agg
	if cfg.progress {
		agg = &trace.Agg{}
		sinks = append(sinks, progressSink{total: cfg.solutions}, agg)
	}
	var jsonl *trace.JSONL
	var jsonlFile *os.File
	if cfg.statsJSON != "" {
		jsonlFile, err = os.Create(cfg.statsJSON)
		if err != nil {
			return err
		}
		jsonl = trace.NewJSONL(jsonlFile)
		sinks = append(sinks, jsonl)
	}
	var board *topology.Board
	if cfg.board != "" {
		board, err = topology.FromArg(cfg.board)
		if err != nil {
			return err
		}
	}
	var reg *telemetry.Registry
	var boardGauges *telemetry.BoardGauges
	if cfg.metricsOut != "" {
		reg = telemetry.NewRegistry()
		sinks = append(sinks, telemetry.NewBridge(reg))
		if board != nil {
			boardGauges = telemetry.NewBoardGauges(reg, board)
		}
	}

	// Durable checkpoint store: every persisted snapshot is fsync'd
	// before the append returns, so a crash at any point loses at most
	// the attempts folded since the last checkpoint.
	var store *jobstore.Store
	var resumeCP *kway.SearchCheckpoint
	var storeErr error
	if cfg.storeDir != "" || cfg.resumeDir != "" {
		store, resumeCP, err = openRunStore(cfg)
		if err != nil {
			return err
		}
		defer store.Close()
	}

	sink := trace.Multi(sinks...)
	if sink != nil {
		sink.Event(trace.Event{Kind: trace.KindPhase, Attempt: -1, Phase: trace.PhaseParse, Dur: time.Since(parseStart)})
	}
	opts := core.Options{
		Threshold:     cfg.threshold,
		Solutions:     cfg.solutions,
		Seed:          cfg.seed,
		Verify:        cfg.check,
		Timeout:       cfg.timeout,
		MaxStale:      cfg.maxStale,
		Multilevel:    cfg.multilevel,
		RefineWorkers: cfg.refineWorkers,
		Trace:         sink,
		Board:         board,
		Resume:        resumeCP,
		Spans:         jobRun.Scope(),
	}
	if store != nil {
		opts.CheckpointEvery = cfg.ckptEvery
		opts.Checkpoint = func(cp kway.SearchCheckpoint) {
			if err := store.AppendCheckpoint(cliJobID, cp); err != nil && storeErr == nil {
				storeErr = fmt.Errorf("checkpoint store: %w", err)
			}
		}
	}
	res, err := core.Partition(g, opts)
	if boardGauges != nil && err == nil {
		graphs := make([]*hypergraph.Graph, len(res.Parts))
		for i, p := range res.Parts {
			graphs[i] = p.Graph
		}
		boardGauges.SetLoads(verify.LinkLoads(board, graphs))
	}
	if agg != nil {
		c := agg.Snapshot()
		fmt.Fprintf(os.Stderr, "kpart: stats: %d FM passes, %d moves; %d carves (%d rejected), %d replicas, %d rollbacks\n",
			c.Passes, c.Moves, c.Carves, c.RejectedCarves, c.Replicas, c.Rollbacks)
	}
	if jsonl != nil {
		// The stats stream is a deliverable: a sink write error — from
		// any event append or from the final close — must fail the run
		// with a non-zero exit, not leave a silently truncated file.
		jerr := jsonl.Err()
		if cerr := jsonlFile.Close(); jerr == nil {
			jerr = cerr
		}
		if jerr != nil && err == nil {
			err = fmt.Errorf("stats stream %s: %w", cfg.statsJSON, jerr)
		}
	}
	if reg != nil {
		// The snapshot is written even when the search failed: the
		// counters up to the failure are exactly what an operator wants.
		if merr := writeMetrics(cfg.metricsOut, reg); merr != nil && err == nil {
			err = merr
		}
	}
	if tracer != nil {
		// End the job span first so the root frame is in the timeline;
		// the export runs even on search failure — the spans up to the
		// failure are the diagnosis. An unwritable timeline is its own
		// failure mode (exit 5), mirroring the stats-stream contract.
		jobRun.End()
		spans, _ := tracer.Collector().Trace(jobRun.Scope().TraceID())
		if terr := writeTrace(cfg.traceOut, spans); terr != nil && err == nil {
			err = terr
		}
	}
	if store != nil && err == nil && storeErr == nil {
		// A terminal record marks the store complete; a later -resume of
		// the same directory replays the finished reduction and exits 0
		// instead of redoing the search.
		if derr := store.AppendDone(cliJobID, map[string]any{"device_cost": res.Summary.DeviceCost()}); derr != nil {
			storeErr = derr
		}
	}
	if storeErr != nil && err == nil {
		// Durability is a deliverable: a store the run could not append
		// to must fail loudly, not pose as a valid resume point.
		err = fmt.Errorf("checkpoint store %s: %w", cfg.storeDir, storeErr)
	}
	if err != nil {
		return err
	}
	s := res.Summary
	fmt.Printf("circuit %s: %d cells, %d CLBs, %d terminals\n",
		g.Name, g.NumCells(), g.TotalArea(), g.NumTerminals())
	fmt.Printf("partition: k=%d  cost=%.0f  avg CLB util=%.0f%%  avg IOB util=%.0f%%  replicated=%d (%.1f%%)\n",
		s.K(), s.DeviceCost(), 100*s.AvgCLBUtil(), 100*s.AvgIOBUtil(),
		s.ReplicatedCells(), s.ReplicatedPct(res.SourceCells))
	if res.Summary.HasTopo {
		fmt.Printf("topology: board %s  hop-weighted interconnect=%d\n", board.Name, res.Summary.TopoCost)
	}
	fmt.Printf("search: %d feasible solutions, %d failed attempts; cost spread min=%.0f mean=%.0f max=%.0f\n",
		res.Feasible, res.Failed, res.CostMin, res.CostMean, res.CostMax)
	if res.Resumed {
		fmt.Printf("search: resumed from attempt %d\n", res.ResumedFrom)
	}
	if res.Stopped != "" {
		fmt.Printf("search: stopped early (%s) with the best solution so far\n", res.Stopped)
	}
	if cfg.check {
		if err := res.Verify(g); err != nil {
			return err
		}
		fmt.Println("verify: partition is consistent (coverage, producers, IOB accounting)")
	}
	if cfg.verbose {
		t := report.NewTable("", "Part", "Device", "CLBs", "Util", "Terms", "IOBs", "Cells", "Replicas")
		for i, p := range res.Parts {
			t.Row(fmt.Sprintf("P%d", i), p.Device.Name, p.Graph.TotalArea(),
				fmt.Sprintf("%.0f%%", 100*p.Device.Utilization(p.Graph.TotalArea())),
				p.Graph.NumTerminals(), p.Device.IOBs, p.Graph.NumCells(), p.Replicas)
		}
		t.Render(os.Stdout)
	}
	if cfg.jsonOut {
		if err := writeJSON(os.Stdout, g, res, board); err != nil {
			return err
		}
	}
	if cfg.outDir != "" {
		if err := writeParts(cfg.outDir, g.Name, res); err != nil {
			return err
		}
		fmt.Printf("wrote %d part netlists to %s\n", len(res.Parts), cfg.outDir)
	}
	return nil
}

// writeMetrics snapshots the registry as Prometheus text exposition.
func writeMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics snapshot %s: %w", path, err)
	}
	err = reg.WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics snapshot %s: %w", path, err)
	}
	return nil
}

// traceExportError marks a -trace-out timeline that could not be
// written; it maps to exit code 5.
type traceExportError struct{ err error }

func (e *traceExportError) Error() string { return e.err.Error() }
func (e *traceExportError) Unwrap() error { return e.err }

// writeTrace writes the recorded spans as Chrome trace_event JSON.
func writeTrace(path string, spans []span.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return &traceExportError{fmt.Errorf("trace export %s: %w", path, err)}
	}
	err = span.WriteChromeTrace(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return &traceExportError{fmt.Errorf("trace export %s: %w", path, err)}
	}
	return nil
}

// writeParts materializes each part as a standalone .clb file.
func writeParts(dir, name string, res core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, p := range res.Parts {
		path := filepath.Join(dir, fmt.Sprintf("%s.p%d.clb", name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = hypergraph.Write(f, p.Graph)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonSolution is the machine-readable summary schema.
type jsonSolution struct {
	Circuit     string     `json:"circuit"`
	K           int        `json:"k"`
	DeviceCost  float64    `json:"device_cost"`
	CLBUtil     float64    `json:"avg_clb_util"`
	IOBUtil     float64    `json:"avg_iob_util"`
	Replicated  int        `json:"replicated_cells"`
	SourceCells int        `json:"source_cells"`
	Board       string     `json:"board,omitempty"`
	TopoCost    *int       `json:"topo_cost,omitempty"`
	Parts       []jsonPart `json:"parts"`
}

type jsonPart struct {
	Device    string `json:"device"`
	CLBs      int    `json:"clbs"`
	Terminals int    `json:"terminals"`
	Cells     int    `json:"cells"`
	Replicas  int    `json:"replicas"`
}

func writeJSON(w io.Writer, g *hypergraph.Graph, res core.Result, board *topology.Board) error {
	out := jsonSolution{
		Circuit:     g.Name,
		K:           res.Summary.K(),
		DeviceCost:  res.Summary.DeviceCost(),
		CLBUtil:     res.Summary.AvgCLBUtil(),
		IOBUtil:     res.Summary.AvgIOBUtil(),
		Replicated:  res.Summary.ReplicatedCells(),
		SourceCells: res.SourceCells,
	}
	if res.Summary.HasTopo && board != nil {
		out.Board = board.Name
		topo := res.Summary.TopoCost
		out.TopoCost = &topo
	}
	for _, p := range res.Parts {
		out.Parts = append(out.Parts, jsonPart{
			Device: p.Device.Name, CLBs: p.Graph.TotalArea(),
			Terminals: p.Graph.NumTerminals(), Cells: p.Graph.NumCells(), Replicas: p.Replicas,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
