// Command kpart partitions a circuit into a heterogeneous FPGA
// library, minimizing total device cost (Eq. 1) and interconnect
// (Eq. 2) with optional functional replication.
//
// Input is either a mapped circuit (.clb, see internal/hypergraph) or
// a gate-level netlist (.gnl, see internal/netlist), which is
// technology-mapped first.
//
// Usage:
//
//	kpart [-t 1] [-solutions 50] [-seed 1] [-gate] [-v] circuit.clb
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
	"fpgapart/internal/prof"
	"fpgapart/internal/report"
	"fpgapart/internal/techmap"
)

func main() {
	threshold := flag.Int("t", 1, "replication potential threshold T (-1 disables replication)")
	solutions := flag.Int("solutions", 50, "feasible k-way solutions to generate")
	seed := flag.Int64("seed", 1, "random seed")
	gate := flag.Bool("gate", false, "input is a gate-level netlist (.gnl); map it first")
	verbose := flag.Bool("v", false, "print per-part details")
	check := flag.Bool("verify", false, "verify every accepted carve and solution in-loop, plus the final result")
	outDir := flag.String("o", "", "write each part as <dir>/<circuit>.pN.clb")
	jsonOut := flag.Bool("json", false, "print the solution summary as JSON")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kpart [flags] <circuit.clb|circuit.gnl>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart:", err)
		os.Exit(1)
	}
	err = run(flag.Arg(0), *threshold, *solutions, *seed, *gate || strings.HasSuffix(flag.Arg(0), ".gnl"), *verbose, *check, *outDir, *jsonOut)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart:", err)
		os.Exit(1)
	}
}

func run(path string, threshold, solutions int, seed int64, gate, verbose, check bool, outDir string, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var g *hypergraph.Graph
	if gate {
		n, err := netlist.Read(f)
		if err != nil {
			return err
		}
		m, err := techmap.Map(n, techmap.Options{Seed: seed})
		if err != nil {
			return err
		}
		s := n.Stats()
		fmt.Printf("mapped %s: %d gates (%d FF) -> %d CLBs, %d IOBs\n",
			n.Name, s.Gates, s.DFFs, m.Graph.NumCells(), m.Graph.NumTerminals())
		g = m.Graph
	} else {
		g, err = hypergraph.Read(f)
		if err != nil {
			return err
		}
	}

	res, err := core.Partition(g, core.Options{Threshold: threshold, Solutions: solutions, Seed: seed, Verify: check})
	if err != nil {
		return err
	}
	s := res.Summary
	fmt.Printf("circuit %s: %d cells, %d CLBs, %d terminals\n",
		g.Name, g.NumCells(), g.TotalArea(), g.NumTerminals())
	fmt.Printf("partition: k=%d  cost=%.0f  avg CLB util=%.0f%%  avg IOB util=%.0f%%  replicated=%d (%.1f%%)\n",
		s.K(), s.DeviceCost(), 100*s.AvgCLBUtil(), 100*s.AvgIOBUtil(),
		s.ReplicatedCells(), s.ReplicatedPct(res.SourceCells))
	fmt.Printf("search: %d feasible solutions, %d failed attempts; cost spread min=%.0f mean=%.0f max=%.0f\n",
		res.Feasible, res.Failed, res.CostMin, res.CostMean, res.CostMax)
	if check {
		if err := res.Verify(g); err != nil {
			return err
		}
		fmt.Println("verify: partition is consistent (coverage, producers, IOB accounting)")
	}
	if verbose {
		t := report.NewTable("", "Part", "Device", "CLBs", "Util", "Terms", "IOBs", "Cells", "Replicas")
		for i, p := range res.Parts {
			t.Row(fmt.Sprintf("P%d", i), p.Device.Name, p.Graph.TotalArea(),
				fmt.Sprintf("%.0f%%", 100*p.Device.Utilization(p.Graph.TotalArea())),
				p.Graph.NumTerminals(), p.Device.IOBs, p.Graph.NumCells(), p.Replicas)
		}
		t.Render(os.Stdout)
	}
	if jsonOut {
		if err := writeJSON(os.Stdout, g, res); err != nil {
			return err
		}
	}
	if outDir != "" {
		if err := writeParts(outDir, g.Name, res); err != nil {
			return err
		}
		fmt.Printf("wrote %d part netlists to %s\n", len(res.Parts), outDir)
	}
	return nil
}

// writeParts materializes each part as a standalone .clb file.
func writeParts(dir, name string, res core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, p := range res.Parts {
		path := filepath.Join(dir, fmt.Sprintf("%s.p%d.clb", name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = hypergraph.Write(f, p.Graph)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonSolution is the machine-readable summary schema.
type jsonSolution struct {
	Circuit     string     `json:"circuit"`
	K           int        `json:"k"`
	DeviceCost  float64    `json:"device_cost"`
	CLBUtil     float64    `json:"avg_clb_util"`
	IOBUtil     float64    `json:"avg_iob_util"`
	Replicated  int        `json:"replicated_cells"`
	SourceCells int        `json:"source_cells"`
	Parts       []jsonPart `json:"parts"`
}

type jsonPart struct {
	Device    string `json:"device"`
	CLBs      int    `json:"clbs"`
	Terminals int    `json:"terminals"`
	Cells     int    `json:"cells"`
	Replicas  int    `json:"replicas"`
}

func writeJSON(w io.Writer, g *hypergraph.Graph, res core.Result) error {
	out := jsonSolution{
		Circuit:     g.Name,
		K:           res.Summary.K(),
		DeviceCost:  res.Summary.DeviceCost(),
		CLBUtil:     res.Summary.AvgCLBUtil(),
		IOBUtil:     res.Summary.AvgIOBUtil(),
		Replicated:  res.Summary.ReplicatedCells(),
		SourceCells: res.SourceCells,
	}
	for _, p := range res.Parts {
		out.Parts = append(out.Parts, jsonPart{
			Device: p.Device.Name, CLBs: p.Graph.TotalArea(),
			Terminals: p.Graph.NumTerminals(), Cells: p.Graph.NumCells(), Replicas: p.Replicas,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
