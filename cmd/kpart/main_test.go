package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/jobstore"
	"fpgapart/internal/kway"
	"fpgapart/internal/netlist"
	"fpgapart/internal/search"
	"fpgapart/internal/span"
)

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func writeCLB(t *testing.T) string {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: 120, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.clb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := hypergraph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCLB(t *testing.T) {
	path := writeCLB(t)
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 3, seed: 1, verbose: true, check: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"partition: k=", "verify: partition is consistent", "Device"} {
		if !contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunGateNetlist(t *testing.T) {
	n, err := netlist.Random(netlist.RandomParams{Gates: 200, Inputs: 10, Outputs: 6, DffFrac: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.gnl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Write(f, n); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 2, seed: 1, gate: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "mapped") {
		t.Fatalf("missing mapping line:\n%s", out)
	}
}

func TestRunMissingFile(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(runConfig{path: "/nonexistent.clb", threshold: 1, solutions: 1, seed: 1})
	}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestRunStatsJSONAndTimeout(t *testing.T) {
	path := writeCLB(t)
	stats := filepath.Join(t.TempDir(), "stats.jsonl")
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 3, seed: 1,
			timeout: time.Minute, statsJSON: stats})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "partition: k=") {
		t.Fatalf("missing partition line:\n%s", out)
	}
	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty stats file")
	}
	var sawSolution bool
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
		if m["event"] == "solution" {
			sawSolution = true
		}
	}
	if !sawSolution {
		t.Fatalf("no solution events among %d lines", len(lines))
	}
}

// -metrics-out must leave a Prometheus text snapshot of the engine
// counters and phase timings next to the normal output.
func TestRunMetricsOut(t *testing.T) {
	path := writeCLB(t)
	metrics := filepath.Join(t.TempDir(), "metrics.prom")
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 3, seed: 1, metricsOut: metrics})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "partition: k=") {
		t.Fatalf("missing partition line:\n%s", out)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	snap := string(data)
	for _, want := range []string{
		"# TYPE fpgapart_carve_accepted_total counter",
		"# TYPE fpgapart_phase_seconds histogram",
		`fpgapart_phase_seconds_count{phase="parse"} 1`,
		`fpgapart_phase_seconds_count{phase="search"} 1`,
		"fpgapart_solutions_total",
	} {
		if !contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// A stats-stream write failure must fail the run with a clear message
// (and thus a non-zero exit), never leave a silently truncated file.
// /dev/full accepts the open and fails every write with ENOSPC.
func TestRunStatsJSONWriteError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	path := writeCLB(t)
	_, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 2, seed: 1, statsJSON: "/dev/full"})
	})
	if err == nil {
		t.Fatal("expected error from failing stats stream")
	}
	if !strings.Contains(err.Error(), "stats stream /dev/full") {
		t.Fatalf("error should name the stats stream: %v", err)
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exit code %d, want 1", got)
	}
}

func TestExitCodes(t *testing.T) {
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Fatalf("generic error -> %d, want 1", got)
	}
	inf := &kway.InfeasibleError{Attempts: 5, First: errors.New("no carve")}
	if got := exitCode(fmt.Errorf("wrap: %w", inf)); got != 2 {
		t.Fatalf("infeasible -> %d, want 2", got)
	}
	budget := &search.ErrBudget{Cause: context.DeadlineExceeded, Folded: 0}
	if got := exitCode(fmt.Errorf("wrap: %w", budget)); got != 3 {
		t.Fatalf("budget -> %d, want 3", got)
	}
	// A timeout with no feasible solution wraps both; budget wins.
	both := fmt.Errorf("kway: %v: %w", inf, budget)
	if got := exitCode(both); got != 3 {
		t.Fatalf("budget+infeasible -> %d, want 3", got)
	}
	if got := exitCode(fmt.Errorf("wrap: %w", &netlist.ParseError{Format: "netlist", Line: 3})); got != 4 {
		t.Fatalf("netlist parse error -> %d, want 4", got)
	}
	if got := exitCode(fmt.Errorf("wrap: %w", &hypergraph.ParseError{Line: 7})); got != 4 {
		t.Fatalf("hypergraph parse error -> %d, want 4", got)
	}
}

// Truncated or malformed input must surface line context and map to
// exit code 4 — not the bare "unexpected EOF"-style error the tool
// used to print.
func TestRunMalformedInput(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, file, content string
		gate                bool
		wantInMsg           string
	}{
		{"truncated-clb", "t.clb", "circuit c\ninput a\ncell u0 area=2 in", false, "line 3"},
		{"empty-clb", "e.clb", "", false, "missing 'circuit'"},
		{"truncated-gnl", "t.gnl", "circuit c\ninput a\noutput y\nand y\n", true, "line 4"},
		{"bad-attr-clb", "b.clb", "circuit c\ncell u0 area=x\n", false, "col"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.file)
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := capture(t, func() error {
				return run(runConfig{path: path, threshold: 1, solutions: 1, seed: 1, gate: tc.gate})
			})
			if err == nil {
				t.Fatal("expected parse error")
			}
			if got := exitCode(err); got != 4 {
				t.Fatalf("exit code %d, want 4 (err: %v)", got, err)
			}
			if !strings.Contains(err.Error(), tc.wantInMsg) {
				t.Fatalf("error %q should contain %q", err, tc.wantInMsg)
			}
		})
	}
}

// TestRunStoreAndResume covers the durable-CLI contract: a store left
// mid-search by an interrupted run resumes with -resume, exits 0, and
// reports the resume point both on stdout and as resumed_from_attempt
// in the -stats-json stream.
func TestRunStoreAndResume(t *testing.T) {
	path := writeCLB(t)
	dir := filepath.Join(t.TempDir(), "store")

	// Fabricate the store a crash would leave: the submit record plus a
	// mid-search checkpoint (folded=3 of 6), no terminal record.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var cps []kway.SearchCheckpoint
	full, err := core.Partition(g, core.Options{
		Threshold: 1, Solutions: 6, Seed: 9,
		Checkpoint: func(cp kway.SearchCheckpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 6 {
		t.Fatalf("checkpoints = %d, want 6", len(cps))
	}
	st, _, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSubmit(cliJobID, map[string]any{"circuit": path}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(cliJobID, cps[2]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	stats := filepath.Join(t.TempDir(), "stats.jsonl")
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 6, seed: 9,
			resumeDir: dir, ckptEvery: 1, statsJSON: stats})
	})
	if err != nil {
		t.Fatalf("resume must exit 0, got: %v", err)
	}
	if !contains(out, "search: resumed from attempt 3") {
		t.Fatalf("missing resume line:\n%s", out)
	}
	wantCost := fmt.Sprintf("cost=%.0f", full.Summary.DeviceCost())
	if !contains(out, wantCost) {
		t.Fatalf("resumed run diverged from the uninterrupted one (%s):\n%s", wantCost, out)
	}
	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"resumed_from_attempt":3`) {
		t.Fatalf("stats stream missing resumed_from_attempt:\n%s", data)
	}

	// The completed run appended its terminal record: a second -resume
	// replays the finished reduction (no search) and still exits 0.
	st2, jobs, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var done bool
	for _, j := range jobs {
		if j.ID == cliJobID {
			done = j.Done
		}
	}
	st2.Close()
	if !done {
		t.Fatal("store not marked done after the resumed run completed")
	}
	out2, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 6, seed: 9, resumeDir: dir, ckptEvery: 1})
	})
	if err != nil {
		t.Fatalf("second resume must exit 0, got: %v", err)
	}
	if !contains(out2, wantCost) {
		t.Fatalf("replayed run lost the result:\n%s", out2)
	}
}

// -trace-out must leave a well-formed Chrome trace_event file: the
// JSON-object container form with displayTimeUnit, balanced B/E pairs
// per (pid, tid), and the run's span vocabulary on the timeline.
func TestRunTraceOut(t *testing.T) {
	// A circuit too large for the biggest library device (272 usable
	// CLBs), so the carve path runs FM and the timeline records
	// fm-pass spans; -check adds the verify span.
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 14, PrimaryOut: 8, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.clb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 3, seed: 1, check: true, traceOut: tracePath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "partition: k=") {
		t.Fatalf("missing partition line:\n%s", out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var ct span.ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("trace file is not Chrome trace JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", ct.DisplayTimeUnit)
	}
	type lane struct{ pid, tid int }
	depth := make(map[lane]int)
	names := make(map[string]bool)
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[lane{ev.PID, ev.TID}]++
			names[ev.Name] = true
		case "E":
			depth[lane{ev.PID, ev.TID}]--
			if depth[lane{ev.PID, ev.TID}] < 0 {
				t.Fatalf("unbalanced E for pid=%d tid=%d", ev.PID, ev.TID)
			}
		case "M":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("pid=%d tid=%d: %d unclosed B event(s)", k.pid, k.tid, d)
		}
	}
	for _, want := range []string{"job", "parse", "search", "attempt", "fm-pass", "fold", "verify"} {
		if !names[want] {
			t.Fatalf("timeline missing %q span (have %v)", want, names)
		}
	}
}

// An unwritable -trace-out file must fail the run with the dedicated
// exit code 5, mirroring the stats-stream contract: a deliverable the
// tool could not write is never a silent success.
func TestRunTraceOutWriteError(t *testing.T) {
	path := writeCLB(t)
	_, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 2, seed: 1,
			traceOut: filepath.Join(t.TempDir(), "no-such-dir", "trace.json")})
	})
	if err == nil {
		t.Fatal("expected error from unwritable trace path")
	}
	if !strings.Contains(err.Error(), "trace export") {
		t.Fatalf("error should name the trace export: %v", err)
	}
	if got := exitCode(err); got != 5 {
		t.Fatalf("exit code %d, want 5", got)
	}
}

func TestRunJSONAndParts(t *testing.T) {
	path := writeCLB(t)
	dir := filepath.Join(t.TempDir(), "parts")
	out, err := capture(t, func() error {
		return run(runConfig{path: path, threshold: 1, solutions: 3, seed: 1, outDir: dir, jsonOut: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, `"device_cost"`) || !contains(out, `"parts"`) {
		t.Fatalf("missing JSON output:\n%s", out)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no part files written")
	}
	// Every exported part parses back as a valid circuit.
	for _, fe := range files {
		f, err := os.Open(filepath.Join(dir, fe.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := hypergraph.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", fe.Name(), err)
		}
		if g.NumCells() == 0 {
			t.Fatalf("%s: empty part", fe.Name())
		}
	}
}
