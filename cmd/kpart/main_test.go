package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
)

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func writeCLB(t *testing.T) string {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: 120, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.clb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := hypergraph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCLB(t *testing.T) {
	path := writeCLB(t)
	out, err := capture(t, func() error {
		return run(path, 1, 3, 1, false, true, true, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"partition: k=", "verify: partition is consistent", "Device"} {
		if !contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunGateNetlist(t *testing.T) {
	n, err := netlist.Random(netlist.RandomParams{Gates: 200, Inputs: 10, Outputs: 6, DffFrac: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.gnl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Write(f, n); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error {
		return run(path, 1, 2, 1, true, false, false, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, "mapped") {
		t.Fatalf("missing mapping line:\n%s", out)
	}
}

func TestRunMissingFile(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("/nonexistent.clb", 1, 1, 1, false, false, false, "", false)
	}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestRunJSONAndParts(t *testing.T) {
	path := writeCLB(t)
	dir := filepath.Join(t.TempDir(), "parts")
	out, err := capture(t, func() error {
		return run(path, 1, 3, 1, false, false, false, dir, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, `"device_cost"`) || !contains(out, `"parts"`) {
		t.Fatalf("missing JSON output:\n%s", out)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no part files written")
	}
	// Every exported part parses back as a valid circuit.
	for _, fe := range files {
		f, err := os.Open(filepath.Join(dir, fe.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := hypergraph.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", fe.Name(), err)
		}
		if g.NumCells() == 0 {
			t.Fatalf("%s: empty part", fe.Name())
		}
	}
}
