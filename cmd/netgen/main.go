// Command netgen emits synthetic benchmark circuits: either a named
// circuit of the paper's suite (mapped .clb form), a parameterized
// mapped circuit, or a random gate-level netlist (.gnl).
//
// Usage:
//
//	netgen -suite s9234 > s9234.clb
//	netgen -cells 500 -pi 30 -po 20 -dff 100 -seed 7 > synth.clb
//	netgen -gates 2000 -pi 30 -po 20 -seed 7 -gate > synth.gnl
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
)

func main() {
	suite := flag.String("suite", "", "emit a named suite circuit (c3540..s38584); empty = parameterized")
	cells := flag.Int("cells", 500, "CLB count for parameterized mapped circuits")
	gates := flag.Int("gates", 2000, "gate count for -gate netlists")
	pi := flag.Int("pi", 30, "primary inputs")
	po := flag.Int("po", 20, "primary outputs")
	dff := flag.Int("dff", 0, "flip-flop count (mapped) or 0")
	dffFrac := flag.Float64("dfffrac", 0.1, "flip-flop fraction for -gate netlists")
	clustering := flag.Float64("clustering", 0.5, "locality knob in [0,1)")
	seed := flag.Int64("seed", 1, "random seed")
	gate := flag.Bool("gate", false, "emit a gate-level netlist instead of a mapped circuit")
	list := flag.Bool("list", false, "list suite circuits and exit")
	flag.Parse()

	if err := run(*suite, *cells, *gates, *pi, *po, *dff, *dffFrac, *clustering, *seed, *gate, *list); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(suite string, cells, gates, pi, po, dff int, dffFrac, clustering float64, seed int64, gate, list bool) error {
	if list {
		for _, c := range bench.Suite() {
			fmt.Printf("%-8s %5d CLBs  %4d IOBs  %5d DFF\n", c.Name, c.CLBs, c.IOBs, c.DFF)
		}
		return nil
	}
	if gate {
		n, err := netlist.Random(netlist.RandomParams{
			Gates: gates, Inputs: pi, Outputs: po, DffFrac: dffFrac, Seed: seed,
		})
		if err != nil {
			return err
		}
		return netlist.Write(os.Stdout, n)
	}
	var g *hypergraph.Graph
	var err error
	if suite != "" {
		c, ok := bench.ByName(suite)
		if !ok {
			return fmt.Errorf("unknown suite circuit %q (try -list)", suite)
		}
		g, err = c.Build()
	} else {
		g, err = bench.Generate(bench.Params{
			Cells: cells, PrimaryIn: pi, PrimaryOut: po, DFFs: dff,
			Clustering: clustering, Seed: seed,
		})
	}
	if err != nil {
		return err
	}
	return hypergraph.Write(os.Stdout, g)
}
