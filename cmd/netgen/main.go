// Command netgen emits synthetic benchmark circuits: either a named
// circuit of the paper's suite (mapped .clb form), a parameterized
// mapped circuit, or a random gate-level netlist (.gnl).
//
// Usage:
//
//	netgen -suite s9234 > s9234.clb
//	netgen -cells 500 -pi 30 -po 20 -dff 100 -seed 7 > synth.clb
//	netgen -cells 100000 -rent 0.65 -seed 7 > rent65.clb
//	netgen -gates 2000 -pi 30 -po 20 -seed 7 -gate > synth.gnl
//
// With -board a multi-FPGA board description is emitted alongside the
// circuit, expanding a spec (crossbar:N[:CAP], linear:N[:CAP],
// mesh:RxC[:CAP]) into the explicit board-file format kpart -board
// accepts:
//
//	netgen -cells 800 -board mesh:2x2:128 -board-out mesh.board > mesh.clb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
	"fpgapart/internal/topology"
)

func main() {
	cfg := genConfig{}
	flag.StringVar(&cfg.suite, "suite", "", "emit a named suite circuit (c3540..s38584); empty = parameterized")
	flag.IntVar(&cfg.cells, "cells", 500, "CLB count for parameterized mapped circuits")
	flag.IntVar(&cfg.gates, "gates", 2000, "gate count for -gate netlists")
	flag.IntVar(&cfg.pi, "pi", 30, "primary inputs")
	flag.IntVar(&cfg.po, "po", 20, "primary outputs")
	flag.IntVar(&cfg.dff, "dff", 0, "flip-flop count (mapped) or 0")
	flag.Float64Var(&cfg.dffFrac, "dfffrac", 0.1, "flip-flop fraction for -gate netlists")
	flag.Float64Var(&cfg.clustering, "clustering", 0.5, "locality knob in [0,1)")
	flag.Float64Var(&cfg.rent, "rent", 0, "Rent exponent in (0,1): use the power-law distance generator (0 = classic generator)")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed")
	flag.BoolVar(&cfg.gate, "gate", false, "emit a gate-level netlist instead of a mapped circuit")
	flag.BoolVar(&cfg.list, "list", false, "list suite circuits and exit")
	flag.StringVar(&cfg.board, "board", "", "also emit a board description expanded from this spec (crossbar:N[:CAP], linear:N[:CAP], mesh:RxC[:CAP])")
	flag.StringVar(&cfg.boardOut, "board-out", "", "write the expanded -board description to this file (required with -board; the circuit itself goes to stdout)")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

type genConfig struct {
	suite      string
	cells      int
	gates      int
	pi         int
	po         int
	dff        int
	dffFrac    float64
	clustering float64
	rent       float64
	seed       int64
	gate       bool
	list       bool
	board      string
	boardOut   string
}

// validate rejects out-of-range parameters up front with a clear
// message, instead of letting a generator loop hang or emit a
// degenerate circuit.
func (c genConfig) validate() error {
	if err := c.validateBoard(); err != nil {
		return err
	}
	if c.list || c.suite != "" {
		return nil
	}
	if c.gate {
		if c.gates <= 0 {
			return fmt.Errorf("-gates must be positive, got %d", c.gates)
		}
	} else if c.cells <= 0 {
		return fmt.Errorf("-cells must be positive, got %d", c.cells)
	}
	if c.pi <= 0 {
		return fmt.Errorf("-pi must be positive, got %d", c.pi)
	}
	if c.po <= 0 {
		return fmt.Errorf("-po must be positive, got %d", c.po)
	}
	if c.dff < 0 {
		return fmt.Errorf("-dff must be non-negative, got %d", c.dff)
	}
	if c.clustering < 0 || c.clustering >= 1 {
		return fmt.Errorf("-clustering must be in [0,1), got %g", c.clustering)
	}
	if c.rent != 0 && (c.rent <= 0 || c.rent >= 1) {
		return fmt.Errorf("-rent must be in (0,1), got %g", c.rent)
	}
	return nil
}

func (c genConfig) validateBoard() error {
	if c.board == "" {
		if c.boardOut != "" {
			return fmt.Errorf("-board-out needs -board")
		}
		return nil
	}
	if c.boardOut == "" {
		return fmt.Errorf("-board needs -board-out (the circuit occupies stdout)")
	}
	if _, err := topology.ParseSpec(c.board); err != nil {
		return err
	}
	return nil
}

func run(w io.Writer, cfg genConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.board != "" && !cfg.list {
		if err := writeBoard(cfg.board, cfg.boardOut); err != nil {
			return err
		}
	}
	if cfg.list {
		for _, c := range bench.Suite() {
			fmt.Fprintf(w, "%-8s %5d CLBs  %4d IOBs  %5d DFF\n", c.Name, c.CLBs, c.IOBs, c.DFF)
		}
		return nil
	}
	if cfg.gate {
		n, err := netlist.Random(netlist.RandomParams{
			Gates: cfg.gates, Inputs: cfg.pi, Outputs: cfg.po, DffFrac: cfg.dffFrac, Seed: cfg.seed,
		})
		if err != nil {
			return err
		}
		return netlist.Write(w, n)
	}
	var g *hypergraph.Graph
	var err error
	switch {
	case cfg.suite != "":
		c, ok := bench.ByName(cfg.suite)
		if !ok {
			return fmt.Errorf("unknown suite circuit %q (try -list)", cfg.suite)
		}
		g, err = c.Build()
	case cfg.rent != 0:
		g, err = bench.GenerateRent(bench.RentParams{
			Cells: cfg.cells, PrimaryIn: cfg.pi, PrimaryOut: cfg.po, DFFs: cfg.dff,
			Rent: cfg.rent, Seed: cfg.seed,
		})
	default:
		g, err = bench.Generate(bench.Params{
			Cells: cfg.cells, PrimaryIn: cfg.pi, PrimaryOut: cfg.po, DFFs: cfg.dff,
			Clustering: cfg.clustering, Seed: cfg.seed,
		})
	}
	if err != nil {
		return err
	}
	return hypergraph.Write(w, g)
}

// writeBoard expands a board spec into the explicit board-file format,
// so the emitted file round-trips through kpart -board and stays
// editable (capacities, hop costs) without re-running netgen.
func writeBoard(spec, path string) error {
	b, err := topology.ParseSpec(spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = b.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("board file %s: %w", path, err)
	}
	return nil
}
