package main

import (
	"strings"
	"testing"
)

// gen runs the generator into a buffer with sane defaults overridden
// per test.
func gen(t *testing.T, cfg genConfig) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(&sb, cfg)
	return sb.String(), err
}

func TestList(t *testing.T) {
	out, err := gen(t, genConfig{list: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"c3540", "s38584", "CLBs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteCircuit(t *testing.T) {
	out, err := gen(t, genConfig{suite: "c3540", seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit c3540") || !strings.Contains(out, "cell ") {
		t.Fatalf("bad .clb output:\n%.200s", out)
	}
}

func TestUnknownSuite(t *testing.T) {
	if _, err := gen(t, genConfig{suite: "nonesuch", seed: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestParameterized(t *testing.T) {
	out, err := gen(t, genConfig{cells: 80, pi: 10, po: 5, dff: 10, clustering: 0.5, seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit synth2") {
		t.Fatalf("bad output:\n%.200s", out)
	}
}

func TestGateNetlist(t *testing.T) {
	out, err := gen(t, genConfig{gates: 120, pi: 10, po: 5, dffFrac: 0.1, seed: 3, gate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit rand3") || !strings.Contains(out, "input ") {
		t.Fatalf("bad .gnl output:\n%.200s", out)
	}
}

func TestRentGenerator(t *testing.T) {
	out, err := gen(t, genConfig{cells: 400, pi: 20, po: 10, rent: 0.6, seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit rent60-4") || !strings.Contains(out, "cell ") {
		t.Fatalf("bad -rent output:\n%.200s", out)
	}
}

// TestValidation pins the up-front parameter checks: every rejected
// configuration must fail fast with a message naming the flag.
func TestValidation(t *testing.T) {
	base := genConfig{cells: 100, gates: 100, pi: 10, po: 5, clustering: 0.5, seed: 1}
	cases := []struct {
		name   string
		mut    func(*genConfig)
		errSub string
	}{
		{"zero cells", func(c *genConfig) { c.cells = 0 }, "-cells"},
		{"negative cells", func(c *genConfig) { c.cells = -5 }, "-cells"},
		{"zero gates", func(c *genConfig) { c.gate = true; c.gates = 0 }, "-gates"},
		{"negative gates", func(c *genConfig) { c.gate = true; c.gates = -1 }, "-gates"},
		{"zero pi", func(c *genConfig) { c.pi = 0 }, "-pi"},
		{"negative pi", func(c *genConfig) { c.pi = -3 }, "-pi"},
		{"zero po", func(c *genConfig) { c.po = 0 }, "-po"},
		{"negative po", func(c *genConfig) { c.po = -1 }, "-po"},
		{"negative dff", func(c *genConfig) { c.dff = -1 }, "-dff"},
		{"clustering too high", func(c *genConfig) { c.clustering = 1.0 }, "-clustering"},
		{"clustering negative", func(c *genConfig) { c.clustering = -0.1 }, "-clustering"},
		{"rent at one", func(c *genConfig) { c.rent = 1.0 }, "-rent"},
		{"rent negative", func(c *genConfig) { c.rent = -0.5 }, "-rent"},
		{"rent above one", func(c *genConfig) { c.rent = 1.5 }, "-rent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := gen(t, cfg)
			if err == nil {
				t.Fatalf("config %+v: expected validation error", cfg)
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("error %q does not name %s", err, tc.errSub)
			}
		})
	}
	// The -list and -suite paths skip generator validation entirely.
	if _, err := gen(t, genConfig{list: true}); err != nil {
		t.Fatalf("-list with zero params should pass: %v", err)
	}
	if _, err := gen(t, genConfig{suite: "c3540"}); err != nil {
		t.Fatalf("-suite with zero params should pass: %v", err)
	}
}
