package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<22)
	total := 0
	for {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil || n == 0 || total == len(buf) {
			break
		}
	}
	return string(buf[:total]), ferr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 0, 0, 0, 0, 0, 0, 0, 1, false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"c3540", "s38584", "CLBs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteCircuit(t *testing.T) {
	out, err := capture(t, func() error {
		return run("c3540", 0, 0, 0, 0, 0, 0, 0, 1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit c3540") || !strings.Contains(out, "cell ") {
		t.Fatalf("bad .clb output:\n%.200s", out)
	}
}

func TestUnknownSuite(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("nonesuch", 0, 0, 0, 0, 0, 0, 0, 1, false, false)
	}); err == nil {
		t.Fatal("expected error")
	}
}

func TestParameterized(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 80, 0, 10, 5, 10, 0, 0.5, 2, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit synth2") {
		t.Fatalf("bad output:\n%.200s", out)
	}
}

func TestGateNetlist(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 0, 120, 10, 5, 0, 0.1, 0, 3, true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circuit rand3") || !strings.Contains(out, "input ") {
		t.Fatalf("bad .gnl output:\n%.200s", out)
	}
}
