package main

import (
	"strings"
	"testing"
	"time"

	"fpgapart/internal/span"
)

// buildTrace records a small two-process span tree and exports it as
// Chrome trace JSON, the way kpart -trace-out does.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	now := time.Unix(100, 0)
	clock := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	tr := span.NewTracer(span.Options{Process: "kpart", Now: clock, Origin: 7})
	tid := span.DeriveTraceID("cli", 1, 4)
	job := tr.Root(tid, 0).Start("job", -1)
	search := job.Scope().Start("search", -1)
	for i := 0; i < 2; i++ {
		att := search.Scope().Start("attempt", i)
		pass := att.Scope().Start("fm-pass", i)
		pass.End()
		att.End()
	}
	search.End()
	job.End()
	// A foreign process's span, as the coordinator would ingest it.
	worker := span.NewTracer(span.Options{Process: "kpartd", Now: clock, Origin: 9})
	wjob := worker.Root(tid, job.SpanID()).Start("job", -1)
	wjob.End()
	wspans, _ := worker.Collector().Trace(tid)
	tr.Ingest(wspans)

	spans, _ := tr.Collector().Trace(tid)
	var sb strings.Builder
	if err := span.WriteChromeTrace(&sb, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return []byte(sb.String())
}

func TestRenderFlameSummary(t *testing.T) {
	data := buildTrace(t)
	var out strings.Builder
	if err := render(&out, data, 0); err != nil {
		t.Fatalf("render: %v", err)
	}
	got := out.String()
	for _, want := range []string{"2 process(es)", "7 spans", "fm-pass", "attempt", "kpart", "kpartd"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// Self-time accounting: "job" spent most of its time in "search",
	// so its self-time must be smaller than its total. The table
	// renders both columns; spot-check the search row exists at all
	// and the header is present.
	if !strings.Contains(got, "Self") || !strings.Contains(got, "Total") {
		t.Errorf("missing summary columns:\n%s", got)
	}
}

func TestRenderTopK(t *testing.T) {
	data := buildTrace(t)
	var out strings.Builder
	if err := render(&out, data, 1); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(out.String(), "more span name(s)") {
		t.Errorf("top-1 summary should note truncation:\n%s", out.String())
	}
}

func TestRenderRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [`,
		"array form":      `[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]`,
		"no events":       `{"displayTimeUnit":"ms","traceEvents":[]}`,
		"unmatched E":     `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"E","ts":5,"pid":1,"tid":1}]}`,
		"unclosed B":      `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"mismatched pair": `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1},{"name":"y","ph":"E","ts":5,"pid":1,"tid":1}]}`,
		"negative dur":    `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"B","ts":9,"pid":1,"tid":1},{"name":"x","ph":"E","ts":5,"pid":1,"tid":1}]}`,
		"bad phase":       `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
	}
	for name, body := range cases {
		var out strings.Builder
		if err := render(&out, []byte(body), 0); err == nil {
			t.Errorf("%s: malformed trace accepted", name)
		}
	}
}
