// Command spanview renders a text flame summary of a span timeline
// exported by kpart -trace-out (Chrome trace_event JSON, the format
// Perfetto and chrome://tracing load).
//
// Usage:
//
//	spanview [-top 15] trace.json
//
// The summary aggregates spans by (process, name) and ranks them by
// total self-time — the time spent in a span minus the time spent in
// its direct children — which is where a timeline's width actually
// goes. spanview also validates the file: a missing container field,
// an E event without a matching B, or an unbalanced stream is a
// non-zero exit, so CI can use it as a format checker.
//
// Exit codes: 0 = success; 1 = usage or I/O error; 2 = the file is
// not well-formed Chrome trace JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fpgapart/internal/report"
	"fpgapart/internal/span"
)

func main() {
	top := flag.Int("top", 15, "rows in the flame summary (0 = all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spanview [-top 15] <trace.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "spanview:", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, data, *top); err != nil {
		fmt.Fprintf(os.Stderr, "spanview: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}
}

// row is one (process, span name) aggregate of the flame summary.
type row struct {
	process, name string
	count         int
	self, total   time.Duration
}

// frame is one open B event on a (pid, tid) stack.
type frame struct {
	name     string
	start    int64 // µs
	childDur int64 // µs spent in direct children
}

// render parses, validates and summarizes one Chrome trace file.
func render(w io.Writer, data []byte, top int) error {
	var ct span.ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return fmt.Errorf("not Chrome trace JSON: %w", err)
	}
	if ct.DisplayTimeUnit == "" {
		return fmt.Errorf("missing displayTimeUnit (not the JSON-object container form)")
	}
	if len(ct.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}

	type lane struct{ pid, tid int }
	stacks := make(map[lane][]frame)
	procs := make(map[int]string)
	rows := make(map[[2]string]*row)
	spans := 0
	var tmin, tmax int64
	seenTS := false
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				name, _ := ev.Args["name"].(string)
				procs[ev.PID] = name
			}
		case "B":
			stacks[lane{ev.PID, ev.TID}] = append(stacks[lane{ev.PID, ev.TID}], frame{name: ev.Name, start: ev.TS})
			if !seenTS || ev.TS < tmin {
				tmin = ev.TS
			}
			seenTS = true
		case "E":
			k := lane{ev.PID, ev.TID}
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q on pid=%d tid=%d with no open B", i, ev.Name, ev.PID, ev.TID)
			}
			f := st[len(st)-1]
			stacks[k] = st[:len(st)-1]
			if ev.Name != "" && ev.Name != f.name {
				return fmt.Errorf("event %d: E %q does not match open B %q", i, ev.Name, f.name)
			}
			dur := ev.TS - f.start
			if dur < 0 {
				return fmt.Errorf("event %d: E %q ends before its B", i, ev.Name)
			}
			if len(stacks[k]) > 0 {
				stacks[k][len(stacks[k])-1].childDur += dur
			}
			if ev.TS > tmax {
				tmax = ev.TS
			}
			proc := procs[ev.PID]
			if proc == "" {
				proc = fmt.Sprintf("pid %d", ev.PID)
			}
			rk := [2]string{proc, f.name}
			r := rows[rk]
			if r == nil {
				r = &row{process: proc, name: f.name}
				rows[rk] = r
			}
			r.count++
			r.total += time.Duration(dur) * time.Microsecond
			r.self += time.Duration(dur-f.childDur) * time.Microsecond
			spans++
		default:
			return fmt.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("pid=%d tid=%d: %d B event(s) never closed (first: %q)", k.pid, k.tid, len(st), st[0].name)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no B/E span pairs")
	}

	ordered := make([]*row, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].self != ordered[j].self {
			return ordered[i].self > ordered[j].self
		}
		if ordered[i].process != ordered[j].process {
			return ordered[i].process < ordered[j].process
		}
		return ordered[i].name < ordered[j].name
	})
	shown := len(ordered)
	if top > 0 && top < shown {
		shown = top
	}

	fmt.Fprintf(w, "trace: %d process(es), %d spans, wall %s\n",
		len(procs), spans, time.Duration(tmax-tmin)*time.Microsecond)
	t := report.NewTable("", "Self", "Total", "Count", "Process", "Span")
	for _, r := range ordered[:shown] {
		t.Row(r.self.Round(time.Microsecond).String(), r.total.Round(time.Microsecond).String(), r.count, r.process, r.name)
	}
	t.Render(w)
	if shown < len(ordered) {
		fmt.Fprintf(w, "(%d more span name(s); raise -top to see them)\n", len(ordered)-shown)
	}
	return nil
}
