package main

import (
	"os"
	"strings"
	"testing"

	"fpgapart/internal/expt"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out strings.Builder
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		close(done)
	}()
	ferr := fn()
	w.Close()
	<-done
	os.Stdout = old
	return out.String(), ferr
}

func quickCfg() expt.Config {
	return expt.Config{Scale: 12, Runs: 2, Solutions: 2, Seed: 1}
}

func TestRunStaticTables(t *testing.T) {
	out, err := capture(t, func() error {
		return run(quickCfg(), map[string]bool{"1": true, "2": true, "f3": true}, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE I", "TABLE II", "FIGURE 3", "XC3090", "total wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentTables(t *testing.T) {
	out, err := capture(t, func() error {
		return run(quickCfg(), map[string]bool{"3": true, "4": true, "5": true, "6": true, "7": true}, t.TempDir())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE III", "TABLE IV", "TABLE V", "TABLE VI", "TABLE VII"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}
