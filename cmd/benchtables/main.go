// Command benchtables regenerates the paper's evaluation: Tables I–VII
// and Figure 3 of "Multi-way Netlist Partitioning into Heterogeneous
// FPGAs and Minimization of Total Device Cost and Interconnect"
// (Kužnar, Brglez, Zajc — DAC 1994).
//
// Usage:
//
//	benchtables                 # everything, full scale (minutes)
//	benchtables -quick          # 1/8-scale smoke run (seconds)
//	benchtables -only 3,7       # just Table III and Table VII
//	benchtables -runs 20 -solutions 50
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fpgapart/internal/expt"
	"fpgapart/internal/library"
	"fpgapart/internal/prof"
)

func main() {
	quick := flag.Bool("quick", false, "1/8-scale circuits, 5 runs, 5 solutions")
	runs := flag.Int("runs", 20, "bipartitioning runs per circuit (Table III)")
	solutions := flag.Int("solutions", 50, "feasible k-way solutions per run (Tables IV-VII)")
	scale := flag.Int("scale", 0, "divide circuit sizes by this factor (0 = full)")
	workers := flag.Int("workers", 0, "bound experiment parallelism (0 = GOMAXPROCS); results are identical for any value")
	seed := flag.Int64("seed", 42, "experiment seed")
	only := flag.String("only", "", "comma-separated subset: 1,2,f3,3,4,5,6,7,h (h = homogeneous appendix)")
	csvDir := flag.String("csv", "", "also write raw experiment data as CSV files into this directory")
	benchJSON := flag.String("benchjson", "", "write BENCH_fm.json and BENCH_kway.json trajectory points into this directory and exit")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	cfg := expt.Config{Runs: *runs, Solutions: *solutions, Scale: *scale, Workers: *workers, Seed: *seed}
	if *quick {
		cfg.Scale, cfg.Runs, cfg.Solutions = 8, 5, 5
	}
	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"1", "2", "f3", "3", "4", "5", "6", "7", "h"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if *benchJSON != "" {
		err = writeBenchJSON(*benchJSON)
	} else {
		err = run(cfg, want, *csvDir)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(cfg expt.Config, want map[string]bool, csvDir string) error {
	start := time.Now()
	writeCSV := func(name string, fn func(w *os.File) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if want["1"] {
		expt.TableI(library.XC3000()).Render(os.Stdout)
		fmt.Println()
	}
	if want["2"] {
		rows, t, err := expt.TableII(cfg)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		fmt.Println()
		if err := writeCSV("table2.csv", func(w *os.File) error { return expt.TableIICSV(w, rows) }); err != nil {
			return err
		}
	}
	if want["f3"] {
		rows, t, bars, err := expt.Figure3(cfg)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		bars.Render(os.Stdout)
		fmt.Println()
		if err := writeCSV("figure3.csv", func(w *os.File) error { return expt.Figure3CSV(w, rows) }); err != nil {
			return err
		}
	}
	if want["3"] {
		rows, t, err := expt.TableIII(cfg)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		fmt.Println()
		if err := writeCSV("table3.csv", func(w *os.File) error { return expt.TableIIICSV(w, rows) }); err != nil {
			return err
		}
	}
	if want["4"] || want["5"] || want["6"] || want["7"] {
		rows, err := expt.RunKway(cfg)
		if err != nil {
			return err
		}
		if err := writeCSV("kway.csv", func(w *os.File) error { return expt.KwayCSV(w, rows) }); err != nil {
			return err
		}
		if want["4"] {
			expt.TableIV(cfg, rows).Render(os.Stdout)
			fmt.Println()
		}
		if want["5"] {
			expt.TableV(rows).Render(os.Stdout)
			fmt.Println()
		}
		if want["6"] {
			expt.TableVI(rows).Render(os.Stdout)
			fmt.Println()
		}
		if want["7"] {
			expt.TableVII(rows).Render(os.Stdout)
			fmt.Println()
		}
	}
	if want["h"] {
		_, t, err := expt.TableHomogeneous(cfg)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
	return nil
}
