package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/fm"
	"fpgapart/internal/kway"
	"fpgapart/internal/multilevel"
	"fpgapart/internal/replication"
	"fpgapart/internal/topology"
)

// benchPoint is one trajectory sample: the speed of a hot path at a
// fixed, reduced scale plus the quality it reaches at a fixed seed.
// Successive points are comparable because circuit, scale and seed
// never change.
type benchPoint struct {
	Name        string  `json:"name"`
	Circuit     string  `json:"circuit"`
	Scale       int     `json:"scale"`
	Seed        int64   `json:"seed"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cut         int     `json:"cut,omitempty"`
	DeviceCost  float64 `json:"device_cost,omitempty"`
}

const (
	benchCircuit = "s13207"
	benchScale   = 2
	benchSeed    = 1
)

// multilevelPoint is the large-instance trajectory sample: flat FM and
// the multilevel V-cycle on the same fixed-seed Rent's-rule instance
// with the same single-start budget. The cut columns are deterministic;
// only the timing columns move as the engines change.
type multilevelPoint struct {
	Name              string  `json:"name"`
	Circuit           string  `json:"circuit"`
	Cells             int     `json:"cells"`
	Rent              float64 `json:"rent"`
	Seed              int64   `json:"seed"`
	FlatNsPerOp       int64   `json:"flat_ns_per_op"`
	MultilevelNsPerOp int64   `json:"multilevel_ns_per_op"`
	FlatCut           int     `json:"flat_cut"`
	MultilevelCut     int     `json:"multilevel_cut"`
	Levels            int     `json:"levels"`
}

const (
	mlCells = 100_000
	mlRent  = 0.65
	mlSeed  = 1
)

// multilevelBench samples the 10⁵-cell comparison point.
func multilevelBench() (multilevelPoint, error) {
	g, err := bench.GenerateRent(bench.RentParams{
		Cells: mlCells, PrimaryIn: 200, PrimaryOut: 100, Rent: mlRent, Seed: mlSeed,
	})
	if err != nil {
		return multilevelPoint{}, err
	}
	minA, maxA := fm.Balance(g.TotalArea(), 0.1)

	var flatCut int
	var flatErr error
	flatRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, res, err := fm.Bipartition(g, fm.Options{
				Config: fm.Config{
					MinArea: minA, MaxArea: maxA,
					Threshold: fm.NoReplication, Seed: mlSeed,
				},
				Starts: 1,
			})
			if err != nil {
				flatErr = err
				return
			}
			flatCut = res.Cut
		}
	})
	if flatErr != nil {
		return multilevelPoint{}, flatErr
	}

	var mlCut, mlLevels int
	var mlErr error
	mlRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Run(g, multilevel.Config{
				TargetArea: g.TotalArea() / 2,
				MinArea:    minA, MaxArea: maxA,
				Starts: 1, Seed: mlSeed,
			})
			if err != nil {
				mlErr = err
				return
			}
			mlCut, mlLevels = res.Cut, len(res.Levels)
		}
	})
	if mlErr != nil {
		return multilevelPoint{}, mlErr
	}

	return multilevelPoint{
		Name:              "multilevel_vcycle_100k",
		Circuit:           g.Name,
		Cells:             g.NumCells(),
		Rent:              mlRent,
		Seed:              mlSeed,
		FlatNsPerOp:       flatRes.NsPerOp(),
		MultilevelNsPerOp: mlRes.NsPerOp(),
		FlatCut:           flatCut,
		MultilevelCut:     mlCut,
		Levels:            mlLevels,
	}, nil
}

// parfmPoint is the refinement-engine trajectory sample: the classic
// serial FM engine against the deterministic parallel sub-round engine
// (internal/parfm, fm.Config.RefineWorkers >= 2) at several worker
// counts, all refining the same fixed-seed 10⁵-cell Rent's-rule
// instance from the same initial assignment. The cut columns are
// deterministic, and the parallel engine reaches one cut for every
// worker count by construction; only the timing columns move as the
// engines change.
type parfmPoint struct {
	Name          string             `json:"name"`
	Circuit       string             `json:"circuit"`
	Cells         int                `json:"cells"`
	Rent          float64            `json:"rent"`
	Seed          int64              `json:"seed"`
	SerialNsPerOp int64              `json:"serial_ns_per_op"`
	SerialCut     int                `json:"serial_cut"`
	Workers       []parfmWorkerPoint `json:"workers"`
}

type parfmWorkerPoint struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"`
	Cut     int   `json:"cut"`
}

// parfmBench samples one refinement attempt per engine on the 10⁵-cell
// instance, resetting to the same initial assignment each iteration.
func parfmBench() (parfmPoint, error) {
	g, err := bench.GenerateRent(bench.RentParams{
		Cells: mlCells, PrimaryIn: 200, PrimaryOut: 100, Rent: mlRent, Seed: mlSeed,
	})
	if err != nil {
		return parfmPoint{}, err
	}
	assign := fm.RandomAssign(g, mlSeed)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	st, err := replication.NewState(g, assign)
	if err != nil {
		return parfmPoint{}, err
	}
	run := func(workers int) (int64, int, error) {
		var cut int
		var runErr error
		var r fm.Runner
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := st.Reset(assign); err != nil {
					runErr = err
					return
				}
				out, err := r.Run(st, fm.Config{
					MinArea: minA, MaxArea: maxA,
					Threshold: fm.NoReplication, Seed: mlSeed,
					RefineWorkers: workers,
				})
				if err != nil {
					runErr = err
					return
				}
				cut = out.Cut
			}
		})
		if runErr != nil {
			return 0, 0, runErr
		}
		return res.NsPerOp(), cut, nil
	}
	serialNs, serialCut, err := run(0)
	if err != nil {
		return parfmPoint{}, err
	}
	p := parfmPoint{
		Name:          "parfm_refine_100k",
		Circuit:       g.Name,
		Cells:         g.NumCells(),
		Rent:          mlRent,
		Seed:          mlSeed,
		SerialNsPerOp: serialNs,
		SerialCut:     serialCut,
	}
	for _, workers := range []int{2, 4, 8} {
		ns, cut, err := run(workers)
		if err != nil {
			return parfmPoint{}, err
		}
		p.Workers = append(p.Workers, parfmWorkerPoint{Workers: workers, NsPerOp: ns, Cut: cut})
	}
	return p, nil
}

// topologyPoint is the board-objective trajectory sample: one
// fixed-seed circuit partitioned flat (the paper's terminal-cut
// objective) and against a 2x4 mesh of device slots (the hop-weighted
// interconnect objective), with both placements scored on the same
// board. The quality columns are deterministic and board_topo_cost
// must stay below flat_topo_cost — that gap is what the topology
// objective buys; only the timing columns move as the engines change.
type topologyPoint struct {
	Name          string `json:"name"`
	Circuit       string `json:"circuit"`
	Cells         int    `json:"cells"`
	Seed          int64  `json:"seed"`
	Board         string `json:"board"`
	FlatNsPerOp   int64  `json:"flat_ns_per_op"`
	BoardNsPerOp  int64  `json:"board_ns_per_op"`
	FlatK         int    `json:"flat_k"`
	BoardK        int    `json:"board_k"`
	FlatTopoCost  int    `json:"flat_topo_cost"`
	BoardTopoCost int    `json:"board_topo_cost"`
}

const (
	topoCells = 1400
	topoSeed  = 11
	// Generous link capacity: the sample tracks hop cost, not
	// congestion, so routing must never reject a solution.
	topoBoardSpec = "mesh:2x4:1048576"
)

// boardScore prices a finished placement on a board: part i occupies
// slot i, every net pays the Steiner span over the slots it touches.
func boardScore(b *topology.Board, parts []kway.Part) int {
	spans := make(map[string]topology.SlotSet)
	for slot, p := range parts {
		for ni := range p.Graph.Nets {
			spans[p.Graph.Nets[ni].Name] = spans[p.Graph.Nets[ni].Name].Add(slot)
		}
	}
	total := 0
	for _, span := range spans {
		total += b.SpanCost(span)
	}
	return total
}

// topologyBench samples the flat-vs-board comparison point.
func topologyBench() (topologyPoint, error) {
	g, err := bench.Generate(bench.Params{
		Cells: topoCells, PrimaryIn: 40, PrimaryOut: 20, Clustering: 0.5, Seed: 3,
	})
	if err != nil {
		return topologyPoint{}, err
	}
	board, err := topology.ParseSpec(topoBoardSpec)
	if err != nil {
		return topologyPoint{}, err
	}

	sample := func(b *topology.Board) (int64, core.Result, error) {
		var res core.Result
		var runErr error
		bres := testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				res, runErr = core.Partition(g, core.Options{
					Solutions: 8, Seed: topoSeed, Board: b,
				})
				if runErr != nil {
					return
				}
			}
		})
		if runErr != nil {
			return 0, core.Result{}, runErr
		}
		return bres.NsPerOp(), res, nil
	}

	flatNs, flatRes, err := sample(nil)
	if err != nil {
		return topologyPoint{}, err
	}
	boardNs, boardRes, err := sample(board)
	if err != nil {
		return topologyPoint{}, err
	}

	return topologyPoint{
		Name:          "topology_mesh2x4_1400",
		Circuit:       g.Name,
		Cells:         g.NumCells(),
		Seed:          topoSeed,
		Board:         topoBoardSpec,
		FlatNsPerOp:   flatNs,
		BoardNsPerOp:  boardNs,
		FlatK:         flatRes.Summary.K(),
		BoardK:        boardRes.Summary.K(),
		FlatTopoCost:  boardScore(board, flatRes.Parts),
		BoardTopoCost: boardRes.Summary.TopoCost,
	}, nil
}

// writeBenchJSON samples the two engine hot paths (one FM
// bipartitioning run, one full k-way search) and records them as
// BENCH_fm.json and BENCH_kway.json in dir. The seed is pinned so the
// quality columns are deterministic; only the timing columns move as
// the engines change.
func writeBenchJSON(dir string) error {
	c, ok := bench.ByName(benchCircuit)
	if !ok {
		panic("benchjson: unknown circuit " + benchCircuit)
	}
	g, err := c.Small(benchScale).Build()
	if err != nil {
		return err
	}

	var cut int
	fmRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		minA, maxA := fm.Balance(g.TotalArea(), 0.05)
		for i := 0; i < b.N; i++ {
			st, err := replication.NewState(g, fm.RandomAssign(g, benchSeed))
			if err != nil {
				b.Fatal(err)
			}
			res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.Cut
		}
	})

	var cost float64
	kwayRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Partition(g, core.Options{Solutions: 3, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Summary.DeviceCost()
		}
	})

	mlPoint, err := multilevelBench()
	if err != nil {
		return err
	}

	pfPoint, err := parfmBench()
	if err != nil {
		return err
	}

	topoPoint, err := topologyBench()
	if err != nil {
		return err
	}

	points := []struct {
		file  string
		point any
	}{
		{"BENCH_fm.json", point("fm_bipartition", fmRes, cut, 0)},
		{"BENCH_kway.json", point("kway_partition", kwayRes, 0, cost)},
		{"BENCH_multilevel.json", mlPoint},
		{"BENCH_parfm.json", pfPoint},
		{"BENCH_topology.json", topoPoint},
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range points {
		buf, err := json.MarshalIndent(p.point, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(filepath.Join(dir, p.file), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func point(name string, r testing.BenchmarkResult, cut int, cost float64) benchPoint {
	return benchPoint{
		Name:        name,
		Circuit:     benchCircuit,
		Scale:       benchScale,
		Seed:        benchSeed,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Cut:         cut,
		DeviceCost:  cost,
	}
}
