package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/fm"
	"fpgapart/internal/replication"
)

// benchPoint is one trajectory sample: the speed of a hot path at a
// fixed, reduced scale plus the quality it reaches at a fixed seed.
// Successive points are comparable because circuit, scale and seed
// never change.
type benchPoint struct {
	Name        string  `json:"name"`
	Circuit     string  `json:"circuit"`
	Scale       int     `json:"scale"`
	Seed        int64   `json:"seed"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cut         int     `json:"cut,omitempty"`
	DeviceCost  float64 `json:"device_cost,omitempty"`
}

const (
	benchCircuit = "s13207"
	benchScale   = 2
	benchSeed    = 1
)

// writeBenchJSON samples the two engine hot paths (one FM
// bipartitioning run, one full k-way search) and records them as
// BENCH_fm.json and BENCH_kway.json in dir. The seed is pinned so the
// quality columns are deterministic; only the timing columns move as
// the engines change.
func writeBenchJSON(dir string) error {
	c, ok := bench.ByName(benchCircuit)
	if !ok {
		panic("benchjson: unknown circuit " + benchCircuit)
	}
	g, err := c.Small(benchScale).Build()
	if err != nil {
		return err
	}

	var cut int
	fmRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		minA, maxA := fm.Balance(g.TotalArea(), 0.05)
		for i := 0; i < b.N; i++ {
			st, err := replication.NewState(g, fm.RandomAssign(g, benchSeed))
			if err != nil {
				b.Fatal(err)
			}
			res, err := fm.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.Cut
		}
	})

	var cost float64
	kwayRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Partition(g, core.Options{Solutions: 3, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Summary.DeviceCost()
		}
	})

	points := []struct {
		file  string
		point benchPoint
	}{
		{"BENCH_fm.json", point("fm_bipartition", fmRes, cut, 0)},
		{"BENCH_kway.json", point("kway_partition", kwayRes, 0, cost)},
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range points {
		buf, err := json.MarshalIndent(p.point, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(filepath.Join(dir, p.file), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func point(name string, r testing.BenchmarkResult, cut int, cost float64) benchPoint {
	return benchPoint{
		Name:        name,
		Circuit:     benchCircuit,
		Scale:       benchScale,
		Seed:        benchSeed,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Cut:         cut,
		DeviceCost:  cost,
	}
}
