// Command netstat prints Table II-style characteristics of circuits:
// CLBs, IOBs, flip-flops, nets, pins and the Fig. 3 distribution of
// cells over replication potential.
//
// Usage:
//
//	netstat circuit.clb [more.clb ...]
//	netstat -gate circuit.gnl
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
	"fpgapart/internal/report"
	"fpgapart/internal/techmap"
)

func main() {
	gate := flag.Bool("gate", false, "inputs are gate-level netlists; map before reporting")
	dist := flag.Bool("dist", false, "also print the ψ distribution per circuit")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: netstat [-gate] [-dist] <circuit>...")
		os.Exit(2)
	}
	if err := run(flag.Args(), *gate, *dist); err != nil {
		fmt.Fprintln(os.Stderr, "netstat:", err)
		os.Exit(1)
	}
}

func run(paths []string, gate, dist bool) error {
	t := report.NewTable("Circuit characteristics",
		"Circuit", "#CLBs", "#IOBs", "#DFF", "#NETs", "#PINs", "repl.cells(T=1)")
	var graphs []*hypergraph.Graph
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var g *hypergraph.Graph
		if gate {
			n, rerr := netlist.Read(f)
			if rerr == nil {
				if d, derr := n.Depth(); derr == nil {
					fmt.Printf("%s: gate depth %d\n", n.Name, d)
				}
				var m *techmap.Mapped
				m, rerr = techmap.Map(n, techmap.Options{})
				if rerr == nil {
					if d, derr := m.Depth(); derr == nil {
						fmt.Printf("%s: LUT depth %d\n", n.Name, d)
					}
					g = m.Graph
				}
			}
			err = rerr
		} else {
			g, err = hypergraph.Read(f)
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		graphs = append(graphs, g)
		t.Row(g.Name, g.TotalArea(), g.NumTerminals(), g.NumDFF(), g.NumNets(), g.NumPins(),
			g.ReplicableCells(1))
	}
	t.Render(os.Stdout)
	if dist {
		for _, g := range graphs {
			d := g.Distribution()
			bars := report.NewBars(fmt.Sprintf("ψ distribution of %s (%d cells)", g.Name, d.Total))
			pct := func(n int) float64 { return 100 * float64(n) / float64(d.Total) }
			bars.Bar("ψ=0 ", pct(d.SingleOutput), fmt.Sprintf("%.1f%% single-output", pct(d.SingleOutput)))
			bars.Bar("ψ=0*", pct(d.MultiZero), fmt.Sprintf("%.1f%% multi-output, ψ=0", pct(d.MultiZero)))
			for psi := 1; psi <= 5; psi++ {
				if n := d.ByPsi[psi]; n > 0 {
					bars.Bar(fmt.Sprintf("ψ=%d ", psi), pct(n), fmt.Sprintf("%.1f%%", pct(n)))
				}
			}
			bars.Render(os.Stdout)
		}
	}
	return nil
}
