package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestNetstat(t *testing.T) {
	g, err := bench.Generate(bench.Params{Cells: 100, PrimaryIn: 10, PrimaryOut: 5, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.clb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error { return run([]string{path}, false, true) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#CLBs", "ψ distribution", "single-output"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetstatMissingFile(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"/nope.clb"}, false, false) }); err == nil {
		t.Fatal("expected error")
	}
}

func TestNetstatGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.gnl")
	src := "circuit c\ninput a b\noutput y\nand y a b\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{path}, true, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| c ") {
		t.Fatalf("missing circuit row:\n%s", out)
	}
}
