// Command kpartd serves the partitioning engine over HTTP/JSON (see
// internal/server for the API and its admission/degradation
// contracts).
//
// Usage:
//
//	kpartd [-addr :8080] [-workers 2] [-queue 8] [-default-timeout 30s]
//	       [-max-timeout 5m] [-drain-timeout 30s] [-inject spec]
//	       [-store dir] [-checkpoint-every 1]
//	       [-attempt-timeout 2m] [-tries 3] [-hedge-after 0]
//	       [-pprof] [-log-json]
//
// -workers is polymorphic: an integer sizes the local worker pool,
// while a comma-separated list of http:// base URLs switches the
// daemon into coordinator mode — each job's search attempts fan out
// to those worker daemons (deterministic attempt→seed sharding, with
// per-attempt timeouts, bounded retries with jittered backoff, and
// optional request hedging via -hedge-after), and fall back to local
// execution when the whole pool is unreachable. Results are
// byte-identical to a local run either way.
//
// -store makes the job lifecycle durable: submissions, state
// transitions, search checkpoints and results land in an fsync'd
// append-only WAL under the given directory. On restart the daemon
// replays the store, re-enqueues interrupted jobs ahead of new work
// (status carries "recovered": true) and serves completed results
// without re-running them.
//
// Endpoints:
//
//	POST /v1/jobs          submit an asynchronous job (202; 200 on an
//	                       idempotent replay; 429 + Retry-After when the
//	                       queue is full; 503 while draining)
//	GET  /v1/jobs/{id}     retry-safe job status and result lookup
//	POST /v1/partition     synchronous partition (JSON body, or a raw
//	                       .clb body with parameters in the query string)
//	GET  /healthz          liveness (always 200 while the process serves)
//	GET  /readyz           readiness: JSON {ready, draining, queue_depth},
//	                       503 once draining starts
//	GET  /metrics          Prometheus text exposition (engine + HTTP)
//	GET  /debug/buildinfo  module and VCS metadata of the binary
//	GET  /debug/trace/{job}     one job's span tree as JSON (cross-process
//	                            in coordinator mode: worker spans are
//	                            stitched in via traceparent propagation)
//	GET  /debug/flightrecorder  the last N completed spans of this process
//	GET  /debug/pprof/*    runtime profiles (only with -pprof)
//
// Logs are structured (log/slog): every request carries an
// X-Request-Id (a well-formed inbound one is adopted, so a
// coordinator's ID follows its jobs onto worker logs), and job
// lifecycle records join the job ID back to the submitting request's
// ID. -log-json switches from logfmt-style text to one JSON object
// per line.
//
// On SIGTERM/SIGINT the daemon stops admission, drains queued and
// in-flight jobs, and exits; jobs still running when -drain-timeout
// expires are cut at their next deterministic carve boundary. With
// -store, the drain also writes a final metrics snapshot (Prometheus
// text, the same format kpart -metrics-out emits) to metrics.prom in
// the store directory, so the telemetry of the last moments of a
// process — otherwise lost with the scrape endpoint — survives.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fpgapart/internal/coord"
	"fpgapart/internal/faultinject"
	"fpgapart/internal/jobstore"
	"fpgapart/internal/server"
	"fpgapart/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.String("workers", "2", "concurrent partition jobs (an integer), or a comma-separated list of worker daemon base URLs to coordinate, e.g. http://a:8080,http://b:8080")
	queue := flag.Int("queue", 8, "bounded job queue depth (full queue sheds load with 429)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-job search budget when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested search budgets")
	drain := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before cutting them")
	inject := flag.String("inject", "", "deterministic fault plan, e.g. 'panic@attempt=2' (testing only)")
	storeDir := flag.String("store", "", "durable job store directory (WAL + snapshot); restart recovers interrupted jobs and replays completed ones")
	ckptEvery := flag.Int("checkpoint-every", 1, "durable search checkpoint cadence in folded attempts (with -store)")
	attemptTimeout := flag.Duration("attempt-timeout", 2*time.Minute, "coordinator mode: per-attempt deadline for one worker RPC")
	tries := flag.Int("tries", 3, "coordinator mode: tries per attempt across the worker ring before local fallback")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator mode: duplicate a straggling attempt on the next worker after this delay (0 disables hedging)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator-only surface)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON objects instead of text")
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h).With("component", "kpartd")

	plan, err := faultinject.Parse(*inject)
	if err != nil {
		logger.Error("bad -inject", "err", err)
		os.Exit(2)
	}
	if plan != nil {
		logger.Warn("fault injection ARMED (testing only)", "rules", fmt.Sprint(plan.Rules()))
	}

	// -workers is polymorphic: "4" sizes the local pool, a URL list
	// selects coordinator mode (the local pool keeps its default size
	// to drive the coordinator's per-job fan-out).
	poolSize := 0
	var workerURLs []string
	if n, err := strconv.Atoi(strings.TrimSpace(*workers)); err == nil {
		poolSize = n
	} else {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerURLs = append(workerURLs, w)
			}
		}
		if len(workerURLs) == 0 {
			logger.Error("bad -workers", "value", *workers)
			os.Exit(2)
		}
	}

	reg := telemetry.NewRegistry()
	var store *jobstore.Store
	if *storeDir != "" {
		var recovered []*jobstore.Job
		store, recovered, err = jobstore.Open(jobstore.Options{
			Dir:     *storeDir,
			Logger:  logger,
			Metrics: jobstore.NewMetrics(reg),
		})
		if err != nil {
			logger.Error("opening job store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		incomplete := 0
		for _, j := range recovered {
			if !j.Complete() {
				incomplete++
			}
		}
		logger.Info("job store open", "dir", *storeDir, "jobs", len(recovered), "recovering", incomplete)
	}

	var pool *coord.Pool
	if len(workerURLs) > 0 {
		pool, err = coord.New(coord.Config{
			Workers:        workerURLs,
			AttemptTimeout: *attemptTimeout,
			Tries:          *tries,
			HedgeAfter:     *hedgeAfter,
			Logger:         logger,
			Metrics:        coord.NewMetrics(reg),
		})
		if err != nil {
			logger.Error("bad -workers", "err", err)
			os.Exit(2)
		}
		logger.Info("coordinator mode", "workers", workerURLs,
			"attempt_timeout", *attemptTimeout, "tries", *tries, "hedge_after", *hedgeAfter)
	}

	cfg := server.Config{
		Workers:         poolSize,
		QueueDepth:      *queue,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		Inject:          plan,
		Logger:          logger,
		Metrics:         reg,
		EnablePprof:     *pprofOn,
		Store:           store,
		CheckpointEvery: *ckptEvery,
	}
	if pool != nil {
		cfg.Distribute = pool.Distribute
	}
	srv := server.New(cfg)
	if pool != nil {
		// Local fallback: when every worker is unreachable, attempts
		// degrade to in-process execution with identical results.
		pool.SetLocal(srv.LocalAttempt())
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "pprof", *pprofOn)

	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining", "timeout", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue concurrently with the HTTP shutdown:
	// synchronous handlers block on their jobs, so the worker pool must
	// finish for hs.Shutdown to return.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Shutdown(dctx) }()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	drainFailed := false
	if err := <-drainErr; err != nil {
		logger.Error("drain cut short; in-flight jobs were canceled", "err", err)
		drainFailed = true
	}
	if store != nil {
		// The scrape endpoint dies with the process; persist a last
		// metrics snapshot next to the store so the final counters of
		// this process life stay inspectable.
		if err := writeFinalMetrics(filepath.Join(*storeDir, "metrics.prom"), reg); err != nil {
			logger.Warn("final metrics snapshot", "err", err)
		} else {
			logger.Info("final metrics snapshot written", "path", filepath.Join(*storeDir, "metrics.prom"))
		}
		// Compact before closing so the next start replays a snapshot
		// plus a short tail instead of the full history. Jobs the drain
		// cut are still incomplete in the store and recover on restart.
		if err := store.Compact(); err != nil {
			logger.Warn("store compaction", "err", err)
		}
		if err := store.Close(); err != nil {
			logger.Error("closing job store", "err", err)
			os.Exit(1)
		}
	}
	if drainFailed {
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// writeFinalMetrics snapshots the registry as Prometheus text (the
// format kpart -metrics-out writes), atomically via rename so a crash
// mid-write never leaves a torn snapshot.
func writeFinalMetrics(path string, reg *telemetry.Registry) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = reg.WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
