// Command kpartd serves the partitioning engine over HTTP/JSON (see
// internal/server for the API and its admission/degradation
// contracts).
//
// Usage:
//
//	kpartd [-addr :8080] [-workers 2] [-queue 8] [-default-timeout 30s]
//	       [-max-timeout 5m] [-drain-timeout 30s] [-inject spec]
//	       [-pprof] [-log-json]
//
// Endpoints:
//
//	POST /v1/jobs          submit an asynchronous job (202; 200 on an
//	                       idempotent replay; 429 + Retry-After when the
//	                       queue is full; 503 while draining)
//	GET  /v1/jobs/{id}     retry-safe job status and result lookup
//	POST /v1/partition     synchronous partition (JSON body, or a raw
//	                       .clb body with parameters in the query string)
//	GET  /healthz          liveness (always 200 while the process serves)
//	GET  /readyz           readiness: JSON {ready, draining, queue_depth},
//	                       503 once draining starts
//	GET  /metrics          Prometheus text exposition (engine + HTTP)
//	GET  /debug/buildinfo  module and VCS metadata of the binary
//	GET  /debug/pprof/*    runtime profiles (only with -pprof)
//
// Logs are structured (log/slog): every request carries an
// X-Request-Id, and job lifecycle records join the job ID back to the
// submitting request's ID. -log-json switches from logfmt-style text
// to one JSON object per line.
//
// On SIGTERM/SIGINT the daemon stops admission, drains queued and
// in-flight jobs, and exits; jobs still running when -drain-timeout
// expires are cut at their next deterministic carve boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent partition jobs")
	queue := flag.Int("queue", 8, "bounded job queue depth (full queue sheds load with 429)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-job search budget when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested search budgets")
	drain := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before cutting them")
	inject := flag.String("inject", "", "deterministic fault plan, e.g. 'panic@attempt=2' (testing only)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator-only surface)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON objects instead of text")
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h).With("component", "kpartd")

	plan, err := faultinject.Parse(*inject)
	if err != nil {
		logger.Error("bad -inject", "err", err)
		os.Exit(2)
	}
	if plan != nil {
		logger.Warn("fault injection ARMED (testing only)", "rules", fmt.Sprint(plan.Rules()))
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Inject:         plan,
		Logger:         logger,
		EnablePprof:    *pprofOn,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "pprof", *pprofOn)

	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining", "timeout", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue concurrently with the HTTP shutdown:
	// synchronous handlers block on their jobs, so the worker pool must
	// finish for hs.Shutdown to return.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Shutdown(dctx) }()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := <-drainErr; err != nil {
		logger.Error("drain cut short; in-flight jobs were canceled", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
