package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

// TestDaemonLifecycle is the black-box smoke: build the daemon, start
// it, partition a circuit over HTTP, then SIGTERM it and require a
// clean drain within five seconds.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "kpartd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "1", "-queue", "2", "-drain-timeout", "4s")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp(t, base)

	g, err := bench.Generate(bench.Params{Cells: 120, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/partition?solutions=3&seed=1", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"device_cost"`) {
		t.Fatalf("missing result fields:\n%s", body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain within 5s of SIGTERM")
	}
}

func waitUp(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}
