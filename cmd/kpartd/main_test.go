package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

// getBody fetches url and returns the body, failing on a non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestDaemonLifecycle is the black-box smoke: build the daemon, start
// it, partition a circuit over HTTP, then SIGTERM it and require a
// clean drain within five seconds.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "kpartd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "1", "-queue", "2", "-drain-timeout", "4s", "-pprof", "-log-json")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp(t, base)

	// 400 cells overflow the largest library device, so the job
	// exercises the carve loop and its metrics.
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/partition?solutions=3&seed=1", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"device_cost"`) {
		t.Fatalf("missing result fields:\n%s", body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("partition response missing X-Request-Id")
	}

	// The acceptance scrape: after the completed job, /metrics must show
	// a non-zero request-latency count, the carve counters the job fed
	// through the engine bridge, and the queue-depth gauge.
	metrics := getBody(t, base+"/metrics")
	if !regexp.MustCompile(`fpgapart_http_request_duration_seconds_count\{endpoint="/v1/partition"\} [1-9]`).MatchString(metrics) {
		t.Fatalf("no request latency observations:\n%s", metrics)
	}
	if !regexp.MustCompile(`fpgapart_carve_accepted_total [1-9]`).MatchString(metrics) {
		t.Fatalf("no carve counter samples:\n%s", metrics)
	}
	if !strings.Contains(metrics, "fpgapart_queue_depth ") {
		t.Fatalf("missing queue depth gauge:\n%s", metrics)
	}

	// -pprof mounted the profiling surface; buildinfo is always on.
	if out := getBody(t, base+"/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}
	if out := getBody(t, base+"/debug/buildinfo"); !strings.Contains(out, "fpgapart") {
		t.Fatalf("buildinfo missing module path:\n%s", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain within 5s of SIGTERM")
	}
}

func waitUp(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}
