package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/span"
)

// getBody fetches url and returns the body, failing on a non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestDaemonLifecycle is the black-box smoke: build the daemon, start
// it, partition a circuit over HTTP, then SIGTERM it and require a
// clean drain within five seconds.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "kpartd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "1", "-queue", "2", "-drain-timeout", "4s", "-pprof", "-log-json")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp(t, base)

	// 400 cells overflow the largest library device, so the job
	// exercises the carve loop and its metrics.
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/partition?solutions=3&seed=1", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"device_cost"`) {
		t.Fatalf("missing result fields:\n%s", body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("partition response missing X-Request-Id")
	}

	// The acceptance scrape: after the completed job, /metrics must show
	// a non-zero request-latency count, the carve counters the job fed
	// through the engine bridge, and the queue-depth gauge.
	metrics := getBody(t, base+"/metrics")
	if !regexp.MustCompile(`fpgapart_http_request_duration_seconds_count\{endpoint="/v1/partition"\} [1-9]`).MatchString(metrics) {
		t.Fatalf("no request latency observations:\n%s", metrics)
	}
	if !regexp.MustCompile(`fpgapart_carve_accepted_total [1-9]`).MatchString(metrics) {
		t.Fatalf("no carve counter samples:\n%s", metrics)
	}
	if !strings.Contains(metrics, "fpgapart_queue_depth ") {
		t.Fatalf("missing queue depth gauge:\n%s", metrics)
	}

	// -pprof mounted the profiling surface; buildinfo is always on.
	if out := getBody(t, base+"/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}
	if out := getBody(t, base+"/debug/buildinfo"); !strings.Contains(out, "fpgapart") {
		t.Fatalf("buildinfo missing module path:\n%s", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain within 5s of SIGTERM")
	}
}

// buildDaemon compiles the kpartd binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kpartd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves and releases a loopback port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// benchCircuit renders a deterministic 400-cell circuit.
func benchCircuit(t *testing.T) string {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 10, PrimaryOut: 6, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCrashRecovery is the black-box durability smoke: SIGKILL the
// daemon mid-search and require the restarted process to resume the
// job from its durable checkpoint and finish it with the result a
// never-killed run would have produced.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	storeDir := t.TempDir()
	circuit := benchCircuit(t)
	// A generous search budget: a wall-clock stop would make the
	// result timing-dependent and break the byte-identity assertion.
	daemonArgs := func(addr string) []string {
		return []string{"-addr", addr, "-workers", "1", "-store", storeDir, "-checkpoint-every", "1",
			"-default-timeout", "2m", "-drain-timeout", "2s", "-log-json"}
	}

	// Life 1: submit an async job big enough (60 attempts) that the
	// kill lands mid-search, then SIGKILL as soon as the first durable
	// checkpoint hits the WAL.
	addr1 := freeAddr(t)
	cmd1 := exec.Command(bin, daemonArgs(addr1)...)
	cmd1.Stderr = os.Stderr
	if err := cmd1.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd1.Process.Kill()
	base1 := "http://" + addr1
	waitUp(t, base1)

	resp, err := http.Post(base1+"/v1/jobs?solutions=60&seed=1", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response: %v\n%s", err, body)
	}

	walPath := filepath.Join(storeDir, "wal.log")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if wal, err := os.ReadFile(walPath); err == nil && bytes.Contains(wal, []byte(`"folded"`)) {
			break // first checkpoint record landed
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint appeared in the WAL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	cmd1.Wait()

	// Life 2: same store. The daemon must replay the WAL, re-enqueue
	// the interrupted job and finish it.
	addr2 := freeAddr(t)
	cmd2 := exec.Command(bin, daemonArgs(addr2)...)
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd2.Process.Kill()
	base2 := "http://" + addr2
	waitUp(t, base2)

	var st struct {
		State     string          `json:"state"`
		Recovered bool            `json:"recovered"`
		Result    json.RawMessage `json:"result"`
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		raw := getBody(t, base2+"/v1/jobs/"+sub.ID)
		if err := json.Unmarshal([]byte(raw), &st); err != nil {
			t.Fatalf("status: %v\n%s", err, raw)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in state %q", st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != "done" || !st.Recovered {
		t.Fatalf("recovered job: state=%q recovered=%v", st.State, st.Recovered)
	}

	var got map[string]any
	if err := json.Unmarshal(st.Result, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["resumed_from_attempt"]; !ok {
		t.Fatalf("recovered result missing resumed_from_attempt:\n%s", st.Result)
	}
	delete(got, "resumed_from_attempt")

	// Byte-identity modulo the resume marker: a fresh synchronous run of
	// the same fixed-seed request on the restarted daemon must agree.
	resp2, err := http.Post(base2+"/v1/partition?solutions=60&seed=1", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	refBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d\n%s", resp2.StatusCode, refBody)
	}
	var refSt struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(refBody, &refSt); err != nil {
		t.Fatal(err)
	}
	var want map[string]any
	if err := json.Unmarshal(refSt.Result, &want); err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("recovered result diverged from a fresh run:\n got %s\nwant %s", gj, wj)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// TestCoordinatorMode is the black-box fan-out smoke: a coordinator
// daemon pointed at one worker daemon must serve a partition whose
// attempts all ran remotely.
func TestCoordinatorMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	circuit := benchCircuit(t)

	workerAddr := freeAddr(t)
	worker := exec.Command(bin, "-addr", workerAddr, "-workers", "2", "-drain-timeout", "2s", "-log-json")
	worker.Stderr = os.Stderr
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer worker.Process.Kill()
	waitUp(t, "http://"+workerAddr)

	coordAddr := freeAddr(t)
	coordd := exec.Command(bin, "-addr", coordAddr,
		"-workers", "http://"+workerAddr, "-tries", "2", "-drain-timeout", "2s", "-log-json")
	coordd.Stderr = os.Stderr
	if err := coordd.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordd.Process.Kill()
	base := "http://" + coordAddr
	waitUp(t, base)

	resp, err := http.Post(base+"/v1/partition?solutions=3&seed=1", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition via coordinator: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"device_cost"`) {
		t.Fatalf("missing result fields:\n%s", body)
	}
	metrics := getBody(t, base+"/metrics")
	if !regexp.MustCompile(`fpgapart_coord_attempts_total\{outcome="ok"\} 3`).MatchString(metrics) {
		t.Fatalf("coordinator did not fan out all 3 attempts:\n%s", metrics)
	}

	for _, cmd := range []*exec.Cmd{coordd, worker} {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain within 10s of SIGTERM")
		}
	}
}

// TestCoordinatorStitchedTrace is the black-box tracing smoke: a job
// fanned out by a coordinator daemon must yield ONE trace tree on
// /debug/trace/{job} containing spans minted by both processes —
// coordinator rpc spans with the worker's job subtrees stitched
// underneath via traceparent propagation. It also covers the drain
// contract: SIGTERM with -store leaves a final metrics snapshot.
func TestCoordinatorStitchedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	circuit := benchCircuit(t)
	storeDir := t.TempDir()

	workerAddr := freeAddr(t)
	worker := exec.Command(bin, "-addr", workerAddr, "-workers", "2", "-drain-timeout", "2s", "-log-json")
	worker.Stderr = os.Stderr
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer worker.Process.Kill()
	waitUp(t, "http://"+workerAddr)

	coordAddr := freeAddr(t)
	coordd := exec.Command(bin, "-addr", coordAddr,
		"-workers", "http://"+workerAddr, "-tries", "2", "-store", storeDir,
		"-drain-timeout", "2s", "-log-json")
	coordd.Stderr = os.Stderr
	if err := coordd.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordd.Process.Kill()
	base := "http://" + coordAddr
	waitUp(t, base)

	resp, err := http.Post(base+"/v1/jobs?solutions=3&seed=1", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getBody(t, base+"/v1/jobs/"+sub.ID)
		if strings.Contains(st, `"state":"done"`) {
			break
		}
		if strings.Contains(st, `"state":"failed"`) {
			t.Fatalf("job failed:\n%s", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(25 * time.Millisecond)
	}

	var tr struct {
		Job   string       `json:"job"`
		Spans int          `json:"spans"`
		Tree  []*span.Node `json:"tree"`
	}
	if err := json.Unmarshal([]byte(getBody(t, base+"/debug/trace/"+sub.ID)), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Job != sub.ID || tr.Spans == 0 || len(tr.Tree) == 0 {
		t.Fatalf("bad trace body: %+v", tr)
	}
	// Walk the tree: span IDs embed the minting process's origin, so a
	// stitched cross-process trace must carry at least two distinct
	// origins, and every worker job subtree hangs under a coordinator
	// rpc span.
	origins := make(map[uint64]bool)
	var remoteJobs, rpcs int
	var walk func(n *span.Node, parent string)
	walk = func(n *span.Node, parent string) {
		origins[uint64(n.ID)>>40] = true
		if n.Name == "rpc" {
			rpcs++
		}
		if n.Name == "job" && parent == "rpc" {
			remoteJobs++
		}
		for _, c := range n.Children {
			walk(c, n.Name)
		}
	}
	for _, n := range tr.Tree {
		walk(n, "")
	}
	if len(origins) < 2 {
		t.Fatalf("trace has spans from %d origin(s), want >= 2 (coordinator + worker)", len(origins))
	}
	if rpcs < 3 {
		t.Fatalf("expected >= 3 rpc spans (one per attempt), got %d", rpcs)
	}
	if remoteJobs == 0 {
		t.Fatal("no worker job subtree stitched under an rpc span")
	}
	flight := getBody(t, base+"/debug/flightrecorder")
	if !strings.Contains(flight, `"process":"kpartd"`) || !strings.Contains(flight, `"name":"job"`) {
		t.Fatalf("flight recorder missing completed spans:\n%.500s", flight)
	}

	for _, cmd := range []*exec.Cmd{coordd, worker} {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain within 10s of SIGTERM")
		}
	}
	// The drain must have left a final metrics snapshot next to the
	// store — the same Prometheus text format kpart -metrics-out emits.
	snap, err := os.ReadFile(filepath.Join(storeDir, "metrics.prom"))
	if err != nil {
		t.Fatalf("final metrics snapshot missing: %v", err)
	}
	for _, want := range []string{"# TYPE", "fpgapart_jobs_total", "fpgapart_coord_attempts_total"} {
		if !bytes.Contains(snap, []byte(want)) {
			t.Fatalf("final metrics snapshot missing %q:\n%.500s", want, snap)
		}
	}
}

func waitUp(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}
