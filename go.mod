module fpgapart

go 1.22
