// Blifflow demonstrates the interchange path: a BLIF design (written
// by some external synthesis tool) is parsed, logic-optimized,
// technology-mapped into XC3000 CLBs and partitioned — the complete
// flow the MCNC benchmarks of the paper would take.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fpgapart/internal/core"
	"fpgapart/internal/netlist"
	"fpgapart/internal/techmap"
)

func main() {
	// Pretend an external tool handed us a BLIF file: synthesize one
	// from a 12-bit array multiplier plus a counter, glued by buffers
	// that the optimizer should sweep.
	mul, err := netlist.ArrayMultiplier(12)
	if err != nil {
		log.Fatal(err)
	}
	var blif bytes.Buffer
	if err := netlist.WriteBLIF(&blif, mul); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BLIF in: %d bytes\n", blif.Len())

	n, err := netlist.ReadBLIF(&blif)
	if err != nil {
		log.Fatal(err)
	}
	s := n.Stats()
	fmt.Printf("parsed %s: %d gates, %d nets\n", n.Name, s.Gates, s.Nets)

	opt, err := netlist.Optimize(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %d -> %d gates\n", len(n.Gates), len(opt.Gates))

	m, err := techmap.Map(opt, techmap.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: %d CLBs, %d IOBs\n", m.Graph.NumCells(), m.Graph.NumTerminals())

	// Spot-check the flow end to end: 0xABC * 0xDEF through the mapped
	// circuit.
	sim, err := techmap.NewSimulator(m)
	if err != nil {
		log.Fatal(err)
	}
	in := map[string]bool{}
	a, b := uint64(0xABC), uint64(0xDEF)
	for i := 0; i < 12; i++ {
		in[fmt.Sprintf("a%d", i)] = a&(1<<uint(i)) != 0
		in[fmt.Sprintf("b%d", i)] = b&(1<<uint(i)) != 0
	}
	out, err := sim.Step(in)
	if err != nil {
		log.Fatal(err)
	}
	var p uint64
	for i := 0; i < 24; i++ {
		if out[fmt.Sprintf("p%d", i)] {
			p |= 1 << uint(i)
		}
	}
	fmt.Printf("mapped circuit computes 0x%X * 0x%X = 0x%X (want 0x%X)\n", a, b, p, a*b)
	if p != a*b {
		log.Fatal("flow broke the multiplier")
	}

	res, err := core.Partition(m.Graph, core.Options{Threshold: 1, Solutions: 10, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned: %v\n", res.Summary)
	for name, count := range res.Summary.DeviceCounts() {
		fmt.Printf("  %d x %s\n", count, name)
	}
}
