// Tsweep sweeps the threshold replication potential T on one benchmark
// circuit, showing the trade-off the paper's Tables IV-VII quantify:
// smaller T admits more replication, trading CLB headroom for fewer
// cut nets and lower device cost / IOB utilization.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/report"
)

func main() {
	name := flag.String("circuit", "s13207", "suite circuit to sweep")
	solutions := flag.Int("solutions", 15, "feasible solutions per setting")
	scale := flag.Int("scale", 1, "divide the circuit size by this factor")
	flag.Parse()

	c, ok := bench.ByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	c = c.Small(*scale)
	g, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping T on %s (%d CLBs, %d IOBs)\n", c.Name, g.TotalArea(), g.NumTerminals())

	t := report.NewTable("Threshold sweep",
		"T", "k", "Cost", "CLB util", "IOB util", "Replicated", "Repl. %")
	settings := []int{core.NoReplication, 0, 1, 2, 3, 5}
	for _, T := range settings {
		label := fmt.Sprintf("%d", T)
		if T == core.NoReplication {
			label = "off"
		}
		res, err := core.Partition(g, core.Options{Threshold: T, Solutions: *solutions, Seed: 3, Refine: true})
		if err != nil {
			t.Row(label, "fail", err.Error())
			continue
		}
		s := res.Summary
		t.Row(label, s.K(), fmt.Sprintf("%.0f", s.DeviceCost()),
			fmt.Sprintf("%.0f%%", 100*s.AvgCLBUtil()),
			fmt.Sprintf("%.0f%%", 100*s.AvgIOBUtil()),
			s.ReplicatedCells(),
			fmt.Sprintf("%.1f%%", s.ReplicatedPct(res.SourceCells)))
	}
	t.Render(os.Stdout)
	fmt.Println("T=off reproduces the DAC'93 baseline; T=0 allows maximum replication (Eq. 6).")
	fmt.Println("All rows include the pairwise k-way refinement sweep (kway.Refine).")
}
