// Multifpga takes a gate-level design through the whole flow: random
// gate netlist -> XC3000 technology mapping (verified functionally) ->
// cost-driven multi-FPGA partitioning, comparing the DAC'93-style
// baseline against partitioning with functional replication.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fpgapart/internal/core"
	"fpgapart/internal/netlist"
	"fpgapart/internal/techmap"
	"fpgapart/internal/topology"
)

func main() {
	// A 3000-gate sequential design.
	n, err := netlist.Random(netlist.RandomParams{
		Name: "soc", Gates: 3000, Inputs: 48, Outputs: 32, DffFrac: 0.18, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := n.Stats()
	fmt.Printf("design %s: %d gates (%d flip-flops), %d PIs, %d POs\n",
		n.Name, s.Gates, s.DFFs, s.Inputs, s.Outputs)

	m, err := techmap.Map(n, techmap.Options{Seed: 11, DistantPackFrac: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: %d CLBs, %d IOBs, %d nets\n",
		m.Graph.NumCells(), m.Graph.NumTerminals(), m.Graph.NumNets())

	// Sanity: the mapped circuit behaves like the gate-level design.
	if err := verify(n, m); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping verified against gate-level simulation (64 random cycles)")

	for _, cfg := range []struct {
		label     string
		threshold int
	}{
		{"baseline ([3], no replication)", core.NoReplication},
		{"functional replication, T=1", 1},
	} {
		res, err := core.Partition(m.Graph, core.Options{
			Threshold: cfg.threshold, Solutions: 20, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := res.Summary
		fmt.Printf("\n%s:\n", cfg.label)
		fmt.Printf("  k=%d  cost=%.0f  CLB util=%.0f%%  IOB util=%.0f%%  replicated=%.1f%%\n",
			sum.K(), sum.DeviceCost(), 100*sum.AvgCLBUtil(), 100*sum.AvgIOBUtil(),
			sum.ReplicatedPct(res.SourceCells))
		for name, count := range sum.DeviceCounts() {
			fmt.Printf("  %d x %s\n", count, name)
		}
	}

	// The same design on a physical 3x4 mesh of device slots: the
	// search switches to the hop-weighted interconnect objective, so
	// nets that would span distant slots get packed into adjacent ones
	// and the routing post-check guarantees no board link is
	// oversubscribed.
	board, err := topology.ParseSpec("mesh:3x4:512")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Partition(m.Graph, core.Options{
		Threshold: 1, Solutions: 20, Seed: 5, Board: board,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Summary
	fmt.Printf("\nmesh board %s (%d slots, link capacity 512):\n", board.Name, board.Slots)
	fmt.Printf("  k=%d  cost=%.0f  hop-weighted interconnect=%d\n",
		sum.K(), sum.DeviceCost(), sum.TopoCost)
}

func verify(n *netlist.Netlist, m *techmap.Mapped) error {
	gateSim, err := netlist.NewSimulator(n)
	if err != nil {
		return err
	}
	mapSim, err := techmap.NewSimulator(m)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(1))
	for cyc := 0; cyc < 64; cyc++ {
		in := map[string]bool{}
		for _, pi := range n.Inputs {
			in[pi] = r.Intn(2) == 1
		}
		want, err := gateSim.Step(in)
		if err != nil {
			return err
		}
		got, err := mapSim.Step(in)
		if err != nil {
			return err
		}
		for k := range want {
			if got[k] != want[k] {
				return fmt.Errorf("cycle %d: output %s diverged", cyc, k)
			}
		}
	}
	return nil
}
