// Gains walks through Section II–III of the paper on concrete cells:
// replication potential ψ from adjacency vectors (Figs. 1–2) and the
// unified gain model comparing a single move, traditional replication
// and functional replication (Fig. 4's scenario).
package main

import (
	"fmt"
	"log"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

func main() {
	potentials()
	gains()
}

// potentials reproduces Figs. 1 and 2: ψ counts the inputs adjacent to
// exactly one output.
func potentials() {
	fmt.Println("== Replication potential (Eq. 4) ==")
	b := hypergraph.NewBuilder("fig12")
	a := b.InputNet("a")
	bb := b.InputNet("b")
	c := b.InputNet("c")
	x := b.OutputNet("X")
	y := b.OutputNet("Y")
	m := b.AddCell(hypergraph.CellSpec{
		Name: "M(fig1)", Inputs: []hypergraph.NetID{a, bb, c},
		Outputs: []hypergraph.NetID{x, y},
		DepBits: [][]int{{1, 1, 0}, {0, 1, 1}},
	})
	in := make([]hypergraph.NetID, 5)
	for i := range in {
		in[i] = b.InputNet(fmt.Sprintf("a%d", i+1))
	}
	x1 := b.OutputNet("X1")
	x2 := b.OutputNet("X2")
	f := b.AddCell(hypergraph.CellSpec{
		Name: "F(fig2)", Inputs: in,
		Outputs: []hypergraph.NetID{x1, x2},
		DepBits: [][]int{{1, 1, 1, 1, 0}, {0, 0, 0, 1, 1}},
	})
	g := b.MustBuild()
	for _, id := range []hypergraph.CellID{m, f} {
		cell := g.Cell(id)
		fmt.Printf("cell %s:\n", cell.Name)
		for i := range cell.Outputs {
			fmt.Printf("  A_X%d = %v\n", i+1, cell.Dep[i])
		}
		fmt.Printf("  ψ = %d\n", cell.ReplicationPotential())
	}
	fmt.Println()
}

// gains builds the Fig. 4-style scenario of the test suite — cell M on
// the cut boundary — and evaluates all three options.
func gains() {
	fmt.Println("== Unified gain model (Eqs. 7-11) ==")
	b := hypergraph.NewBuilder("fig4")
	pi := b.InputNet("pi")
	mk := func(name string) hypergraph.NetID { return b.Net(name) }
	a, bn, c, d, e := mk("a"), mk("b"), mk("c"), mk("d"), mk("e")
	x1, x2 := mk("x1"), mk("x2")
	po := make([]hypergraph.NetID, 6)
	for i := range po {
		po[i] = b.OutputNet(fmt.Sprintf("po%d", i))
	}
	single := func(name string, in, out hypergraph.NetID) hypergraph.CellID {
		return b.AddCell(hypergraph.CellSpec{Name: name,
			Inputs: []hypergraph.NetID{in}, Outputs: []hypergraph.NetID{out}})
	}
	single("DA", pi, a)
	single("DB", pi, bn)
	dc := single("DC", pi, c)
	dd := single("DD", pi, d)
	de := single("DE", pi, e)
	m := b.AddCell(hypergraph.CellSpec{
		Name:    "M",
		Inputs:  []hypergraph.NetID{a, bn, c, d, e},
		Outputs: []hypergraph.NetID{x1, x2},
		DepBits: [][]int{{1, 1, 1, 0, 0}, {0, 0, 0, 1, 1}},
	})
	single("SC", c, po[0])
	single("S1", x1, po[1])
	single("SX2A", x2, po[2])
	sx2b := single("SX2B", x2, po[3])
	single("F1", pi, po[4])
	single("F2", pi, po[5])
	g := b.MustBuild()

	assign := make([]replication.Block, g.NumCells())
	for _, id := range []hypergraph.CellID{dc, dd, de, sx2b} {
		assign[id] = 1
	}
	st, err := replication.NewState(g, assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial cut set size: %d\n", st.CutSize())
	v, err := st.Vectors(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell M vectors:  C^I=%v  Q^I=%v  C^O=%v  Q^O=%v\n", v.CI, v.QI, v.CO, v.QO)

	gm, _ := st.GainMoveFormula(m)
	gtr, _ := st.GainTraditionalFormula(m)
	gfn, carry, _, _ := st.GainFunctionalBest(m)
	fmt.Printf("single move         (Eq. 7):  gain %+d\n", gm)
	fmt.Printf("traditional replication (Eq. 8):  gain %+d\n", gtr)
	fmt.Printf("functional replication (Eq. 9-11): gain %+d, replica carries output mask %b\n", gfn, carry)

	if _, err := st.Apply(replication.Move{Cell: m, Kind: replication.Replicate, Carry: carry}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after functional replication: cut set size %d, replicated cells %d\n",
		st.CutSize(), st.ReplicatedCount())
}
