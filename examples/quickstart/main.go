// Quickstart: build a small mapped circuit with the hypergraph
// builder, partition it into the XC3000 library, and print the Eq. 1 /
// Eq. 2 summary — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
)

func main() {
	// A synthetic 500-CLB circuit; swap in hypergraph.Read(...) to load
	// your own mapped netlist.
	g, err := bench.Generate(bench.Params{
		Name: "demo", Cells: 500, PrimaryIn: 40, PrimaryOut: 25, DFFs: 120,
		Clustering: 0.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d CLBs, %d IOBs, %d flip-flops\n",
		g.Name, g.TotalArea(), g.NumTerminals(), g.NumDFF())

	res, err := core.Partition(g, core.Options{
		Threshold: 1,  // functional replication for cells with ψ ≥ 1
		Solutions: 20, // randomized feasible solutions to explore
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("partitioned into k=%d devices, total cost %.0f N$\n", s.K(), s.DeviceCost())
	fmt.Printf("average CLB utilization %.0f%%, average IOB utilization %.0f%%\n",
		100*s.AvgCLBUtil(), 100*s.AvgIOBUtil())
	for i, p := range res.Parts {
		fmt.Printf("  P%-2d -> %-7s  %3d CLBs (%.0f%%)  %3d/%3d IOBs  %d replicas\n",
			i, p.Device.Name, p.Graph.TotalArea(),
			100*p.Device.Utilization(p.Graph.TotalArea()),
			p.Graph.NumTerminals(), p.Device.IOBs, p.Replicas)
	}
}
